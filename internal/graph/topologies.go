package graph

import (
	"fmt"

	"dui/internal/stats"
)

// The constructors below build the evaluation topologies used by the
// NetHide and Blink experiments. All return undirected (bidirectional)
// graphs with unit weights unless noted.

// Abilene returns a graph shaped like the 11-node Abilene research backbone,
// the canonical small-WAN evaluation topology.
func Abilene() *Graph {
	g := &Graph{}
	names := []string{
		"SEA", "SNV", "LAX", "DEN", "KSC", "HOU", "IPL", "CHI", "ATL", "WDC", "NYC",
	}
	ids := make([]NodeID, len(names))
	for i, n := range names {
		ids[i] = g.AddNode(n)
	}
	links := [][2]int{
		{0, 1}, {0, 3}, {1, 2}, {1, 3}, {2, 5}, {3, 4}, {4, 5}, {4, 6},
		{5, 8}, {6, 7}, {7, 10}, {8, 9}, {8, 6}, {9, 10}, {9, 7},
	}
	for _, l := range links {
		g.AddBiEdge(ids[l[0]], ids[l[1]], 1)
	}
	return g
}

// FatTree returns a k-ary fat-tree data-center topology (k even): (k/2)^2
// core switches, k pods of k/2 aggregation + k/2 edge switches. Hosts are
// not included; edge switches are the leaves.
func FatTree(k int) *Graph {
	if k < 2 || k%2 != 0 {
		panic("graph: fat-tree k must be even and >= 2")
	}
	g := &Graph{}
	half := k / 2
	core := make([]NodeID, half*half)
	for i := range core {
		core[i] = g.AddNode(fmt.Sprintf("core%d", i))
	}
	for p := 0; p < k; p++ {
		agg := make([]NodeID, half)
		edge := make([]NodeID, half)
		for i := 0; i < half; i++ {
			agg[i] = g.AddNode(fmt.Sprintf("agg%d-%d", p, i))
			edge[i] = g.AddNode(fmt.Sprintf("edge%d-%d", p, i))
		}
		for i := 0; i < half; i++ {
			for j := 0; j < half; j++ {
				g.AddBiEdge(agg[i], edge[j], 1)
				g.AddBiEdge(agg[i], core[i*half+j], 1)
			}
		}
	}
	return g
}

// RandomConnected returns a random connected graph with n nodes and
// approximately extra additional edges beyond a random spanning tree. It is
// deterministic given the RNG state.
func RandomConnected(n, extra int, rng *stats.RNG) *Graph {
	if n <= 0 {
		panic("graph: need at least one node")
	}
	g := &Graph{}
	ids := make([]NodeID, n)
	for i := range ids {
		ids[i] = g.AddNode(fmt.Sprintf("n%d", i))
	}
	// Random spanning tree: connect each node i>0 to a random earlier node.
	order := rng.Perm(n)
	for i := 1; i < n; i++ {
		j := order[rng.IntN(i)]
		g.AddBiEdge(ids[order[i]], ids[j], 1)
	}
	for e := 0; e < extra; e++ {
		a, b := rng.IntN(n), rng.IntN(n)
		if a == b || g.HasEdge(ids[a], ids[b]) {
			continue
		}
		g.AddBiEdge(ids[a], ids[b], 1)
	}
	return g
}

// Star returns a hub-and-spoke graph with the hub as node 0 and n spokes.
func Star(n int) *Graph {
	g := &Graph{}
	hub := g.AddNode("hub")
	for i := 0; i < n; i++ {
		s := g.AddNode(fmt.Sprintf("spoke%d", i))
		g.AddBiEdge(hub, s, 1)
	}
	return g
}

// Line returns a chain of n nodes, useful for traceroute tests.
func Line(n int) *Graph {
	g := &Graph{}
	prev := NodeID(-1)
	for i := 0; i < n; i++ {
		id := g.AddNode(fmt.Sprintf("h%d", i))
		if prev >= 0 {
			g.AddBiEdge(prev, id, 1)
		}
		prev = id
	}
	return g
}
