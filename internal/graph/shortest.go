package graph

import (
	"container/heap"
	"math"
	"sort"
)

// ShortestTree holds the result of a single-source shortest-path
// computation: per-node distance and predecessor.
type ShortestTree struct {
	Source NodeID
	Dist   []float64
	Prev   []NodeID // -1 where unreachable or source
}

// Dijkstra computes shortest paths from src over non-negative edge weights.
func (g *Graph) Dijkstra(src NodeID) *ShortestTree {
	g.check(src)
	n := g.N()
	t := &ShortestTree{Source: src, Dist: make([]float64, n), Prev: make([]NodeID, n)}
	for i := range t.Dist {
		t.Dist[i] = math.Inf(1)
		t.Prev[i] = -1
	}
	t.Dist[src] = 0
	pq := &distHeap{{node: src, dist: 0}}
	for pq.Len() > 0 {
		it := heap.Pop(pq).(distItem)
		if it.dist > t.Dist[it.node] {
			continue // stale entry
		}
		for _, e := range g.adj[it.node] {
			nd := it.dist + e.Weight
			if nd < t.Dist[e.To] {
				t.Dist[e.To] = nd
				t.Prev[e.To] = it.node
				heap.Push(pq, distItem{node: e.To, dist: nd})
			}
		}
	}
	return t
}

// PathTo reconstructs the path from the tree's source to dst, or nil if dst
// is unreachable.
func (t *ShortestTree) PathTo(dst NodeID) Path {
	if math.IsInf(t.Dist[dst], 1) {
		return nil
	}
	var rev []NodeID
	for at := dst; at != -1; at = t.Prev[at] {
		rev = append(rev, at)
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// ShortestPath returns a shortest path from src to dst, or nil if
// unreachable.
func (g *Graph) ShortestPath(src, dst NodeID) Path {
	return g.Dijkstra(src).PathTo(dst)
}

// Connected reports whether every node is reachable from node 0 treating
// edges as given (directed reachability).
func (g *Graph) Connected() bool {
	if g.N() == 0 {
		return true
	}
	t := g.Dijkstra(0)
	for _, d := range t.Dist {
		if math.IsInf(d, 1) {
			return false
		}
	}
	return true
}

// KShortestPaths returns up to k loop-free paths from src to dst in order
// of increasing weight (Yen's algorithm). It returns fewer than k paths if
// fewer exist.
func (g *Graph) KShortestPaths(src, dst NodeID, k int) []Path {
	first := g.ShortestPath(src, dst)
	if first == nil || k <= 0 {
		return nil
	}
	paths := []Path{first}
	var candidates []candidate
	for len(paths) < k {
		prev := paths[len(paths)-1]
		for i := 0; i < len(prev)-1; i++ {
			spurNode := prev[i]
			rootPath := prev[:i+1]
			// Build a filtered graph: remove edges used by previous paths
			// sharing this root, and remove root-path nodes (except spur).
			banned := map[[2]NodeID]bool{}
			for _, p := range paths {
				if len(p) > i && Path(p[:i+1]).Equal(rootPath) && len(p) > i+1 {
					banned[[2]NodeID{p[i], p[i+1]}] = true
				}
			}
			removed := map[NodeID]bool{}
			for _, n := range rootPath[:len(rootPath)-1] {
				removed[n] = true
			}
			sub := g.filtered(banned, removed)
			spur := sub.ShortestPath(spurNode, dst)
			if spur == nil {
				continue
			}
			total := append(append(Path{}, rootPath[:len(rootPath)-1]...), spur...)
			candidates = addCandidate(candidates, candidate{path: total, weight: total.Weight(g)})
		}
		if len(candidates) == 0 {
			break
		}
		// Pop the lightest unused candidate.
		sort.SliceStable(candidates, func(a, b int) bool { return candidates[a].weight < candidates[b].weight })
		next := candidates[0]
		candidates = candidates[1:]
		dup := false
		for _, p := range paths {
			if p.Equal(next.path) {
				dup = true
				break
			}
		}
		if !dup {
			paths = append(paths, next.path)
		}
	}
	return paths
}

type candidate struct {
	path   Path
	weight float64
}

func addCandidate(cs []candidate, c candidate) []candidate {
	for _, e := range cs {
		if e.path.Equal(c.path) {
			return cs
		}
	}
	return append(cs, c)
}

// filtered returns a copy of g without the banned edges and without any
// edges touching removed nodes.
func (g *Graph) filtered(banned map[[2]NodeID]bool, removed map[NodeID]bool) *Graph {
	c := &Graph{names: g.names, adj: make([][]Edge, len(g.adj))}
	for i, es := range g.adj {
		if removed[NodeID(i)] {
			continue
		}
		for _, e := range es {
			if removed[e.To] || banned[[2]NodeID{e.From, e.To}] {
				continue
			}
			c.adj[i] = append(c.adj[i], e)
		}
	}
	return c
}

type distItem struct {
	node NodeID
	dist float64
}

type distHeap []distItem

func (h distHeap) Len() int            { return len(h) }
func (h distHeap) Less(i, j int) bool  { return h[i].dist < h[j].dist }
func (h distHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *distHeap) Push(x interface{}) { *h = append(*h, x.(distItem)) }
func (h *distHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}
