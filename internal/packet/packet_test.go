package packet

import (
	"testing"
	"testing/quick"
)

func TestParseAddrRoundTrip(t *testing.T) {
	for _, s := range []string{"0.0.0.0", "10.0.1.2", "255.255.255.255", "192.168.0.1"} {
		a, err := ParseAddr(s)
		if err != nil {
			t.Fatalf("ParseAddr(%q): %v", s, err)
		}
		if a.String() != s {
			t.Fatalf("round trip %q -> %q", s, a.String())
		}
	}
}

func TestParseAddrErrors(t *testing.T) {
	for _, s := range []string{"", "1.2.3", "1.2.3.4.5", "256.0.0.1", "a.b.c.d", "-1.0.0.0"} {
		if _, err := ParseAddr(s); err == nil {
			t.Fatalf("ParseAddr(%q) should fail", s)
		}
	}
}

func TestPrefixContains(t *testing.T) {
	p := MustParsePrefix("10.1.0.0/16")
	if !p.Contains(MustParseAddr("10.1.255.3")) {
		t.Fatal("address in prefix not matched")
	}
	if p.Contains(MustParseAddr("10.2.0.0")) {
		t.Fatal("address outside prefix matched")
	}
	if p.String() != "10.1.0.0/16" {
		t.Fatalf("prefix string = %s", p)
	}
	all := MustParsePrefix("0.0.0.0/0")
	if !all.Contains(MustParseAddr("255.1.2.3")) {
		t.Fatal("default route must contain everything")
	}
}

func TestPrefixNormalizesHostBits(t *testing.T) {
	p := MustParsePrefix("10.1.2.3/16")
	if p.Addr != MustParseAddr("10.1.0.0") {
		t.Fatalf("host bits not masked: %s", p.Addr)
	}
	if p.Nth(5) != MustParseAddr("10.1.0.5") {
		t.Fatalf("Nth = %s", p.Nth(5))
	}
}

func TestPrefixErrors(t *testing.T) {
	for _, s := range []string{"10.0.0.0", "10.0.0.0/33", "10.0.0.0/x", "bad/8"} {
		if _, err := ParsePrefix(s); err == nil {
			t.Fatalf("ParsePrefix(%q) should fail", s)
		}
	}
}

func TestFlowKeyReverse(t *testing.T) {
	k := FlowKey{Src: 1, Dst: 2, SrcPort: 10, DstPort: 20, Proto: ProtoTCP}
	r := k.Reverse()
	if r.Src != 2 || r.Dst != 1 || r.SrcPort != 20 || r.DstPort != 10 {
		t.Fatalf("reverse = %+v", r)
	}
	if r.Reverse() != k {
		t.Fatal("double reverse must be identity")
	}
}

func TestFastHashDistinguishesDirection(t *testing.T) {
	k := FlowKey{Src: 1, Dst: 2, SrcPort: 10, DstPort: 20, Proto: ProtoTCP}
	if k.FastHash() == k.Reverse().FastHash() {
		t.Fatal("hash must be direction-sensitive")
	}
}

func TestFastHashDeterministicAndSpread(t *testing.T) {
	// Hash determinism plus a coarse uniformity check over 64 cells — the
	// property Blink's flow selector relies on.
	counts := make([]int, 64)
	for i := 0; i < 6400; i++ {
		k := FlowKey{
			Src: Addr(0x0a000000 + i), Dst: 0x0b000001,
			SrcPort: uint16(1024 + i%50000), DstPort: 80, Proto: ProtoTCP,
		}
		if k.FastHash() != k.FastHash() {
			t.Fatal("hash not deterministic")
		}
		counts[k.FastHash()%64]++
	}
	for c, n := range counts {
		if n < 50 || n > 150 {
			t.Fatalf("cell %d has %d flows; hash badly skewed", c, n)
		}
	}
}

func TestPacketFlow(t *testing.T) {
	p := NewTCP(1, 2, TCPHeader{SrcPort: 10, DstPort: 20, Seq: 5}, 100)
	k := p.Flow()
	if k.Proto != ProtoTCP || k.SrcPort != 10 || k.DstPort != 20 {
		t.Fatalf("flow = %+v", k)
	}
	u := NewUDP(1, 2, UDPHeader{SrcPort: 7, DstPort: 9}, 64)
	if u.Flow().SrcPort != 7 {
		t.Fatal("udp flow ports")
	}
	i := NewICMP(1, 2, ICMPHeader{Type: ICMPEchoRequest}, 28)
	if got := i.Flow(); got.SrcPort != 0 || got.DstPort != 0 {
		t.Fatal("icmp flow must have zero ports")
	}
}

func TestCloneIsDeep(t *testing.T) {
	p := NewTCP(1, 2, TCPHeader{Seq: 5}, 100)
	p.Payload = []byte{1, 2, 3}
	c := p.Clone()
	c.TCP.Seq = 99
	c.Payload[0] = 42
	if p.TCP.Seq != 5 || p.Payload[0] != 1 {
		t.Fatal("clone shares state with original")
	}
}

func TestMarshalRoundTripTCP(t *testing.T) {
	p := NewTCP(MustParseAddr("10.0.0.1"), MustParseAddr("10.9.0.2"),
		TCPHeader{SrcPort: 443, DstPort: 51000, Seq: 12345, Ack: 999, Flags: FlagACK | FlagPSH, Window: 8192}, 1460)
	p.ID = 7
	p.TTL = 61
	buf := p.Marshal()
	q, err := Unmarshal(buf)
	if err != nil {
		t.Fatal(err)
	}
	if q.Src != p.Src || q.Dst != p.Dst || q.TTL != 61 || q.Proto != ProtoTCP {
		t.Fatalf("ip fields: %+v", q)
	}
	if *q.TCP != *p.TCP {
		t.Fatalf("tcp fields: %+v vs %+v", *q.TCP, *p.TCP)
	}
	if q.Size != 1460 {
		t.Fatalf("modeled size lost: %d", q.Size)
	}
}

func TestMarshalRoundTripICMP(t *testing.T) {
	h := ICMPHeader{
		Type: ICMPTimeExceeded, Code: 0, ID: 3, Seq: 9,
		OrigSrc: MustParseAddr("10.0.0.1"), OrigDst: MustParseAddr("10.9.0.2"), OrigTTL: 3,
	}
	p := NewICMP(MustParseAddr("192.0.2.1"), MustParseAddr("10.0.0.1"), h, 56)
	q, err := Unmarshal(p.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if *q.ICMP != h {
		t.Fatalf("icmp fields: %+v", *q.ICMP)
	}
}

func TestMarshalRoundTripUDPWithPayload(t *testing.T) {
	p := NewUDP(1, 2, UDPHeader{SrcPort: 53, DstPort: 5353}, 0)
	p.Payload = []byte("hello")
	q, err := Unmarshal(p.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if string(q.Payload) != "hello" || q.UDP.SrcPort != 53 {
		t.Fatalf("udp round trip: %+v payload=%q", q.UDP, q.Payload)
	}
}

func TestUnmarshalRejectsCorruption(t *testing.T) {
	p := NewTCP(1, 2, TCPHeader{SrcPort: 1, DstPort: 2}, 100)
	buf := p.Marshal()
	buf[12] ^= 0xff // corrupt src address -> checksum fails
	if _, err := Unmarshal(buf); err == nil {
		t.Fatal("corrupted header accepted")
	}
	if _, err := Unmarshal(buf[:10]); err == nil {
		t.Fatal("short buffer accepted")
	}
	if _, err := Unmarshal(nil); err == nil {
		t.Fatal("nil buffer accepted")
	}
}

func TestMarshalRoundTripProperty(t *testing.T) {
	if err := quick.Check(func(src, dst uint32, sp, dp uint16, seq, ack uint32, flags uint8, ttl uint8) bool {
		p := NewTCP(Addr(src), Addr(dst), TCPHeader{
			SrcPort: sp, DstPort: dp, Seq: seq, Ack: ack, Flags: flags & 0x1f,
		}, 40)
		if ttl == 0 {
			ttl = 1
		}
		p.TTL = ttl
		q, err := Unmarshal(p.Marshal())
		if err != nil {
			return false
		}
		return q.Src == p.Src && q.Dst == p.Dst && q.TTL == p.TTL && *q.TCP == *p.TCP
	}, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestChecksumKnownVector(t *testing.T) {
	// RFC 1071 example data.
	data := []byte{0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7}
	if got := checksum(data); got != ^uint16(0xddf2) {
		t.Fatalf("checksum = %#x", got)
	}
}

func TestProtoString(t *testing.T) {
	if ProtoTCP.String() != "tcp" || ProtoUDP.String() != "udp" || ProtoICMP.String() != "icmp" {
		t.Fatal("proto names")
	}
	if Proto(99).String() != "proto(99)" {
		t.Fatal("unknown proto name")
	}
}

func TestPacketString(t *testing.T) {
	p := NewTCP(MustParseAddr("10.0.0.1"), MustParseAddr("10.0.0.2"), TCPHeader{SrcPort: 1, DstPort: 2, Seq: 3}, 40)
	if s := p.String(); s == "" {
		t.Fatal("empty string")
	}
}
