package packet

import "fmt"

// Proto identifies the transport protocol, with the standard IP protocol
// numbers.
type Proto uint8

// Transport protocol numbers (IANA).
const (
	ProtoICMP Proto = 1
	ProtoTCP  Proto = 6
	ProtoUDP  Proto = 17
)

// String returns the conventional protocol name.
func (p Proto) String() string {
	switch p {
	case ProtoICMP:
		return "icmp"
	case ProtoTCP:
		return "tcp"
	case ProtoUDP:
		return "udp"
	default:
		return fmt.Sprintf("proto(%d)", uint8(p))
	}
}

// TCP flag bits.
const (
	FlagFIN uint8 = 1 << iota
	FlagSYN
	FlagRST
	FlagPSH
	FlagACK
)

// TCPHeader carries the TCP fields the simulated systems read. Blink
// watches Seq for retransmissions; PCC and the TCP model use Seq/Ack for
// loss accounting.
type TCPHeader struct {
	SrcPort, DstPort uint16
	Seq, Ack         uint32
	Flags            uint8
	Window           uint16
}

// UDPHeader carries the UDP ports.
type UDPHeader struct {
	SrcPort, DstPort uint16
}

// ICMP message types used by the traceroute engine.
const (
	ICMPEchoReply    uint8 = 0
	ICMPTimeExceeded uint8 = 11
	ICMPEchoRequest  uint8 = 8
)

// ICMPHeader models the ICMP messages traceroute exchanges. For
// TimeExceeded replies, OrigSrc/OrigDst/OrigTTL echo the expired probe's
// header, which is how traceroute matches replies to probes.
type ICMPHeader struct {
	Type, Code uint8
	ID, Seq    uint16
	// Quoted original header for TimeExceeded, per RFC 792.
	OrigSrc, OrigDst Addr
	OrigTTL          uint8
}

// Packet is one simulated packet. Exactly one of TCP/UDP/ICMP is non-nil,
// matching Proto. Size is the on-wire size in bytes (headers + payload) and
// drives link serialization delay; Payload is optional application data.
type Packet struct {
	ID       uint64 // unique per simulation run, for tracing
	Src, Dst Addr
	TTL      uint8
	Proto    Proto
	Size     int
	TCP      *TCPHeader
	UDP      *UDPHeader
	ICMP     *ICMPHeader
	Payload  []byte
}

// DefaultTTL is the initial TTL for ordinary (non-traceroute) packets.
const DefaultTTL = 64

// NewTCP returns a TCP packet with sensible defaults (TTL 64).
func NewTCP(src, dst Addr, h TCPHeader, size int) *Packet {
	return &Packet{Src: src, Dst: dst, TTL: DefaultTTL, Proto: ProtoTCP, Size: size, TCP: &h}
}

// NewUDP returns a UDP packet with sensible defaults.
func NewUDP(src, dst Addr, h UDPHeader, size int) *Packet {
	return &Packet{Src: src, Dst: dst, TTL: DefaultTTL, Proto: ProtoUDP, Size: size, UDP: &h}
}

// NewICMP returns an ICMP packet.
func NewICMP(src, dst Addr, h ICMPHeader, size int) *Packet {
	return &Packet{Src: src, Dst: dst, TTL: DefaultTTL, Proto: ProtoICMP, Size: size, ICMP: &h}
}

// Clone returns a deep copy, used by MitM taps that modify packets and by
// retransmission logic.
func (p *Packet) Clone() *Packet {
	c := *p
	if p.TCP != nil {
		h := *p.TCP
		c.TCP = &h
	}
	if p.UDP != nil {
		h := *p.UDP
		c.UDP = &h
	}
	if p.ICMP != nil {
		h := *p.ICMP
		c.ICMP = &h
	}
	if p.Payload != nil {
		c.Payload = append([]byte(nil), p.Payload...)
	}
	return &c
}

// FlowKey is the classic 5-tuple. It is comparable and therefore usable as
// a map key; FastHash gives the data-plane hash Blink's flow selector uses.
type FlowKey struct {
	Src, Dst         Addr
	SrcPort, DstPort uint16
	Proto            Proto
}

// Flow returns the packet's 5-tuple. Port fields are zero for ICMP.
func (p *Packet) Flow() FlowKey {
	k := FlowKey{Src: p.Src, Dst: p.Dst, Proto: p.Proto}
	switch {
	case p.TCP != nil:
		k.SrcPort, k.DstPort = p.TCP.SrcPort, p.TCP.DstPort
	case p.UDP != nil:
		k.SrcPort, k.DstPort = p.UDP.SrcPort, p.UDP.DstPort
	}
	return k
}

// Reverse returns the key of the opposite direction of the flow.
func (k FlowKey) Reverse() FlowKey {
	return FlowKey{
		Src: k.Dst, Dst: k.Src,
		SrcPort: k.DstPort, DstPort: k.SrcPort,
		Proto: k.Proto,
	}
}

// FNV-1a 64-bit parameters (FIPS-less classic FNV, as in hash/fnv).
const (
	fnvOffset64 uint64 = 14695981039346656037
	fnvPrime64  uint64 = 1099511628211
)

// FastHash returns a 64-bit hash of the 5-tuple: FNV-1a over the header
// bytes followed by a murmur-style avalanche finalizer (raw FNV's low bits
// correlate under structured inputs, and data planes index small cell
// arrays with exactly those bits). It is *not* symmetric: A→B and B→A hash
// differently, which matches Blink's data-plane hash of the packet's own
// header fields.
//
// The FNV-1a loop is unrolled as straight-line arithmetic over the 13
// big-endian header bytes — no fnv.New64a() allocation, no hash.Hash64
// interface dispatch — and produces bit-identical values to feeding the
// same bytes through hash/fnv (TestFastHashMatchesReference pins this, so
// the optimization can never silently move flows between cells).
func (k FlowKey) FastHash() uint64 {
	h := fnvOffset64
	h = (h ^ uint64(byte(k.Src>>24))) * fnvPrime64
	h = (h ^ uint64(byte(k.Src>>16))) * fnvPrime64
	h = (h ^ uint64(byte(k.Src>>8))) * fnvPrime64
	h = (h ^ uint64(byte(k.Src))) * fnvPrime64
	h = (h ^ uint64(byte(k.Dst>>24))) * fnvPrime64
	h = (h ^ uint64(byte(k.Dst>>16))) * fnvPrime64
	h = (h ^ uint64(byte(k.Dst>>8))) * fnvPrime64
	h = (h ^ uint64(byte(k.Dst))) * fnvPrime64
	h = (h ^ uint64(byte(k.SrcPort>>8))) * fnvPrime64
	h = (h ^ uint64(byte(k.SrcPort))) * fnvPrime64
	h = (h ^ uint64(byte(k.DstPort>>8))) * fnvPrime64
	h = (h ^ uint64(byte(k.DstPort))) * fnvPrime64
	h = (h ^ uint64(byte(k.Proto))) * fnvPrime64
	return fmix64(h)
}

// fmix64 is the 64-bit finalizer from MurmurHash3: a full-avalanche
// bijection, so it cannot introduce collisions.
func fmix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// String renders "proto src:sport>dst:dport".
func (k FlowKey) String() string {
	return fmt.Sprintf("%s %s:%d>%s:%d", k.Proto, k.Src, k.SrcPort, k.Dst, k.DstPort)
}

func be32(b []byte, v uint32) {
	b[0], b[1], b[2], b[3] = byte(v>>24), byte(v>>16), byte(v>>8), byte(v)
}

func be16(b []byte, v uint16) {
	b[0], b[1] = byte(v>>8), byte(v)
}

// String renders a one-line summary of the packet for logs and debugging.
func (p *Packet) String() string {
	switch {
	case p.TCP != nil:
		return fmt.Sprintf("tcp %s:%d>%s:%d seq=%d ack=%d flags=%#x len=%d ttl=%d",
			p.Src, p.TCP.SrcPort, p.Dst, p.TCP.DstPort, p.TCP.Seq, p.TCP.Ack, p.TCP.Flags, p.Size, p.TTL)
	case p.UDP != nil:
		return fmt.Sprintf("udp %s:%d>%s:%d len=%d ttl=%d",
			p.Src, p.UDP.SrcPort, p.Dst, p.UDP.DstPort, p.Size, p.TTL)
	case p.ICMP != nil:
		return fmt.Sprintf("icmp %s>%s type=%d code=%d ttl=%d",
			p.Src, p.Dst, p.ICMP.Type, p.ICMP.Code, p.TTL)
	default:
		return fmt.Sprintf("%s %s>%s len=%d ttl=%d", p.Proto, p.Src, p.Dst, p.Size, p.TTL)
	}
}
