package packet

import (
	"hash/fnv"
	"math/rand"
	"testing"
)

// referenceFastHash is the historical implementation: hash/fnv over the 13
// big-endian header bytes, then the murmur finalizer.
func referenceFastHash(k FlowKey) uint64 {
	h := fnv.New64a()
	var buf [13]byte
	be32(buf[0:], uint32(k.Src))
	be32(buf[4:], uint32(k.Dst))
	be16(buf[8:], k.SrcPort)
	be16(buf[10:], k.DstPort)
	buf[12] = byte(k.Proto)
	h.Write(buf[:])
	return fmix64(h.Sum64())
}

// TestFastHashMatchesReference pins the inlined FNV-1a arithmetic to the
// hash/fnv + fmix64 reference on randomized keys. Any divergence would
// silently move flows between Blink's selector cells and change every
// trace-driven curve, so this must hold bit for bit.
func TestFastHashMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	keys := []FlowKey{
		{},
		{Src: 1, Dst: 2, SrcPort: 3, DstPort: 4, Proto: ProtoTCP},
		{Src: ^Addr(0), Dst: ^Addr(0), SrcPort: 65535, DstPort: 65535, Proto: 255},
	}
	for i := 0; i < 100000; i++ {
		keys = append(keys, FlowKey{
			Src:     Addr(rng.Uint32()),
			Dst:     Addr(rng.Uint32()),
			SrcPort: uint16(rng.Uint32()),
			DstPort: uint16(rng.Uint32()),
			Proto:   Proto(rng.Uint32()),
		})
	}
	for _, k := range keys {
		if got, want := k.FastHash(), referenceFastHash(k); got != want {
			t.Fatalf("FastHash(%+v) = %#x, reference = %#x", k, got, want)
		}
	}
}

// TestFastHashDirectional re-pins the asymmetry FastHash documents.
func TestFastHashDirectional(t *testing.T) {
	k := FlowKey{Src: 10, Dst: 20, SrcPort: 1000, DstPort: 443, Proto: ProtoTCP}
	if k.FastHash() == k.Reverse().FastHash() {
		t.Fatal("FastHash must not be symmetric")
	}
}
