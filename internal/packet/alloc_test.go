//go:build !race

// Allocation guards: regressions in the zero-allocation hot paths fail
// `go test`, not just benchmarks. Excluded under -race, whose
// instrumentation changes inlining and allocation behavior.

package packet

import "testing"

var hashSink uint64

func TestFastHashZeroAllocs(t *testing.T) {
	k := FlowKey{Src: 0x14000001, Dst: 0x0a090001, SrcPort: 1234, DstPort: 443, Proto: ProtoTCP}
	if avg := testing.AllocsPerRun(1000, func() {
		hashSink = k.FastHash()
	}); avg != 0 {
		t.Fatalf("FlowKey.FastHash allocates %.1f objects/op, want 0", avg)
	}
}
