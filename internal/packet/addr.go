// Package packet models the packets exchanged in the simulated network:
// IPv4 addressing, TCP/UDP/ICMP headers, 5-tuple flow keys with fast
// hashing, and wire serialization. The design follows the layered style of
// gopacket, reduced to the protocols the paper's case studies need.
package packet

import (
	"fmt"
	"strconv"
	"strings"
)

// Addr is an IPv4 address in host byte order. The simulator uses IPv4
// only; 32-bit addresses keep flow keys comparable and hashing cheap.
type Addr uint32

// MakeAddr builds an address from dotted-quad octets.
func MakeAddr(a, b, c, d byte) Addr {
	return Addr(uint32(a)<<24 | uint32(b)<<16 | uint32(c)<<8 | uint32(d))
}

// ParseAddr parses a dotted-quad string.
func ParseAddr(s string) (Addr, error) {
	parts := strings.Split(s, ".")
	if len(parts) != 4 {
		return 0, fmt.Errorf("packet: invalid address %q", s)
	}
	var oct [4]byte
	for i, p := range parts {
		v, err := strconv.Atoi(p)
		if err != nil || v < 0 || v > 255 {
			return 0, fmt.Errorf("packet: invalid address %q", s)
		}
		oct[i] = byte(v)
	}
	return MakeAddr(oct[0], oct[1], oct[2], oct[3]), nil
}

// MustParseAddr is ParseAddr that panics on error, for literals in tests
// and examples.
func MustParseAddr(s string) Addr {
	a, err := ParseAddr(s)
	if err != nil {
		panic(err)
	}
	return a
}

// String renders the address as a dotted quad.
func (a Addr) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", byte(a>>24), byte(a>>16), byte(a>>8), byte(a))
}

// Prefix is an IPv4 prefix (address + mask length). Blink tracks state per
// destination prefix; the simulator assigns hosts to prefixes.
type Prefix struct {
	Addr Addr
	Bits int
}

// ParsePrefix parses "a.b.c.d/len" notation.
func ParsePrefix(s string) (Prefix, error) {
	i := strings.IndexByte(s, '/')
	if i < 0 {
		return Prefix{}, fmt.Errorf("packet: invalid prefix %q", s)
	}
	a, err := ParseAddr(s[:i])
	if err != nil {
		return Prefix{}, err
	}
	bits, err := strconv.Atoi(s[i+1:])
	if err != nil || bits < 0 || bits > 32 {
		return Prefix{}, fmt.Errorf("packet: invalid prefix %q", s)
	}
	return Prefix{Addr: a.mask(bits), Bits: bits}, nil
}

// MustParsePrefix is ParsePrefix that panics on error.
func MustParsePrefix(s string) Prefix {
	p, err := ParsePrefix(s)
	if err != nil {
		panic(err)
	}
	return p
}

func (a Addr) mask(bits int) Addr {
	if bits <= 0 {
		return 0
	}
	if bits >= 32 {
		return a
	}
	return a & Addr(^uint32(0)<<(32-bits))
}

// Contains reports whether addr falls inside the prefix.
func (p Prefix) Contains(a Addr) bool { return a.mask(p.Bits) == p.Addr }

// Nth returns the n-th address within the prefix (n=0 is the network
// address). It does not check overflow beyond the prefix size.
func (p Prefix) Nth(n uint32) Addr { return p.Addr + Addr(n) }

// String renders "a.b.c.d/len".
func (p Prefix) String() string { return fmt.Sprintf("%s/%d", p.Addr, p.Bits) }
