package packet

import (
	"encoding/binary"
	"fmt"
)

// Wire serialization. The simulator moves *Packet values directly, but the
// wire codec serves three purposes: it keeps the model honest (every field
// has a place in a real header), it lets tests assert header layout, and it
// gives the MitM attacker a byte-level view when needed.
//
// The simulator's usual trick of modeling bulk data without materializing
// bytes is preserved: Packet.Size is carried in the IPv4 TotalLength field
// even when Payload is empty, and is restored by Unmarshal.

const (
	ipv4HeaderLen = 20
	tcpHeaderLen  = 20
	udpHeaderLen  = 8
	icmpHeaderLen = 17 // type, code, checksum, id, seq + quoted orig (9)
)

// HeaderLen returns the combined IPv4+transport header length in bytes for
// the packet's protocol.
func (p *Packet) HeaderLen() int {
	switch p.Proto {
	case ProtoTCP:
		return ipv4HeaderLen + tcpHeaderLen
	case ProtoUDP:
		return ipv4HeaderLen + udpHeaderLen
	case ProtoICMP:
		return ipv4HeaderLen + icmpHeaderLen
	default:
		return ipv4HeaderLen
	}
}

// Marshal serializes the packet into a fresh buffer: a real IPv4 header
// (no options) followed by the transport header and payload. The IPv4
// TotalLength field carries max(Size, headers+len(Payload)) so that
// modeled-but-unmaterialized bulk data round-trips.
func (p *Packet) Marshal() []byte {
	hlen := p.HeaderLen()
	total := hlen + len(p.Payload)
	if p.Size > total {
		total = p.Size
	}
	buf := make([]byte, hlen+len(p.Payload))
	// IPv4 header.
	buf[0] = 0x45 // version 4, IHL 5
	binary.BigEndian.PutUint16(buf[2:], uint16(total))
	binary.BigEndian.PutUint16(buf[4:], uint16(p.ID)) // identification (low bits)
	buf[8] = p.TTL
	buf[9] = byte(p.Proto)
	binary.BigEndian.PutUint32(buf[12:], uint32(p.Src))
	binary.BigEndian.PutUint32(buf[16:], uint32(p.Dst))
	binary.BigEndian.PutUint16(buf[10:], checksum(buf[:ipv4HeaderLen]))

	t := buf[ipv4HeaderLen:]
	switch {
	case p.TCP != nil:
		binary.BigEndian.PutUint16(t[0:], p.TCP.SrcPort)
		binary.BigEndian.PutUint16(t[2:], p.TCP.DstPort)
		binary.BigEndian.PutUint32(t[4:], p.TCP.Seq)
		binary.BigEndian.PutUint32(t[8:], p.TCP.Ack)
		t[12] = 5 << 4 // data offset
		t[13] = p.TCP.Flags
		binary.BigEndian.PutUint16(t[14:], p.TCP.Window)
	case p.UDP != nil:
		binary.BigEndian.PutUint16(t[0:], p.UDP.SrcPort)
		binary.BigEndian.PutUint16(t[2:], p.UDP.DstPort)
		binary.BigEndian.PutUint16(t[4:], uint16(udpHeaderLen+len(p.Payload)))
	case p.ICMP != nil:
		t[0] = p.ICMP.Type
		t[1] = p.ICMP.Code
		binary.BigEndian.PutUint16(t[4:], p.ICMP.ID)
		binary.BigEndian.PutUint16(t[6:], p.ICMP.Seq)
		binary.BigEndian.PutUint32(t[8:], uint32(p.ICMP.OrigSrc))
		binary.BigEndian.PutUint32(t[12:], uint32(p.ICMP.OrigDst))
		t[16] = p.ICMP.OrigTTL
	}
	copy(buf[hlen:], p.Payload)
	return buf
}

// Unmarshal parses a buffer produced by Marshal. It validates the IPv4
// checksum and version.
func Unmarshal(buf []byte) (*Packet, error) {
	if len(buf) < ipv4HeaderLen {
		return nil, fmt.Errorf("packet: short buffer (%d bytes)", len(buf))
	}
	if buf[0] != 0x45 {
		return nil, fmt.Errorf("packet: unsupported version/IHL %#x", buf[0])
	}
	if checksum(buf[:ipv4HeaderLen]) != 0 {
		return nil, fmt.Errorf("packet: bad IPv4 checksum")
	}
	p := &Packet{
		Size:  int(binary.BigEndian.Uint16(buf[2:])),
		ID:    uint64(binary.BigEndian.Uint16(buf[4:])),
		TTL:   buf[8],
		Proto: Proto(buf[9]),
		Src:   Addr(binary.BigEndian.Uint32(buf[12:])),
		Dst:   Addr(binary.BigEndian.Uint32(buf[16:])),
	}
	t := buf[ipv4HeaderLen:]
	switch p.Proto {
	case ProtoTCP:
		if len(t) < tcpHeaderLen {
			return nil, fmt.Errorf("packet: short TCP header")
		}
		p.TCP = &TCPHeader{
			SrcPort: binary.BigEndian.Uint16(t[0:]),
			DstPort: binary.BigEndian.Uint16(t[2:]),
			Seq:     binary.BigEndian.Uint32(t[4:]),
			Ack:     binary.BigEndian.Uint32(t[8:]),
			Flags:   t[13],
			Window:  binary.BigEndian.Uint16(t[14:]),
		}
		p.Payload = clonePayload(t[tcpHeaderLen:])
	case ProtoUDP:
		if len(t) < udpHeaderLen {
			return nil, fmt.Errorf("packet: short UDP header")
		}
		p.UDP = &UDPHeader{
			SrcPort: binary.BigEndian.Uint16(t[0:]),
			DstPort: binary.BigEndian.Uint16(t[2:]),
		}
		p.Payload = clonePayload(t[udpHeaderLen:])
	case ProtoICMP:
		if len(t) < icmpHeaderLen {
			return nil, fmt.Errorf("packet: short ICMP header")
		}
		p.ICMP = &ICMPHeader{
			Type:    t[0],
			Code:    t[1],
			ID:      binary.BigEndian.Uint16(t[4:]),
			Seq:     binary.BigEndian.Uint16(t[6:]),
			OrigSrc: Addr(binary.BigEndian.Uint32(t[8:])),
			OrigDst: Addr(binary.BigEndian.Uint32(t[12:])),
			OrigTTL: t[16],
		}
		p.Payload = clonePayload(t[icmpHeaderLen:])
	default:
		return nil, fmt.Errorf("packet: unknown protocol %d", p.Proto)
	}
	return p, nil
}

func clonePayload(b []byte) []byte {
	if len(b) == 0 {
		return nil
	}
	return append([]byte(nil), b...)
}

// checksum computes the Internet checksum (RFC 1071) over buf. Computing it
// over a header whose checksum field holds the correct value yields 0.
func checksum(buf []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(buf); i += 2 {
		sum += uint32(binary.BigEndian.Uint16(buf[i:]))
	}
	if len(buf)%2 == 1 {
		sum += uint32(buf[len(buf)-1]) << 8
	}
	for sum>>16 != 0 {
		sum = (sum & 0xffff) + (sum >> 16)
	}
	return ^uint16(sum)
}
