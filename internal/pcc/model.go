package pcc

import "math"

// ForcedOscillation is the analytic form of the §4.2 claim. When a MitM
// ties every randomized controlled trial (u(+ε) == u(−ε)), Allegro's
// decision step is inconclusive by definition, so the controller stays at
// its base rate and escalates ε by εmin per round until the εmax = 5% cap.
// From then on every round still probes at rate·(1±εmax): the flow's
// sending rate oscillates within ±5% of base forever — "the attacker can
// cause PCC flows to fluctuate by ±5%, without allowing them to converge".
//
// It returns the ε value in effect at each decision round and the
// steady-state peak-to-peak relative rate amplitude (2·εmax).
func ForcedOscillation(epsMin, epsMax float64, rounds int) (epsTrace []float64, amplitude float64) {
	if epsMin <= 0 {
		epsMin = 0.01
	}
	if epsMax <= 0 {
		epsMax = 0.05
	}
	eps := epsMin
	for i := 0; i < rounds; i++ {
		epsTrace = append(epsTrace, eps)
		// Inconclusive round: stay, escalate.
		eps += epsMin
		if eps > epsMax {
			eps = epsMax
		}
	}
	return epsTrace, 2 * epsMax
}

// DestinationFluctuation computes the §4.2 fleet-level consequence: n
// flows toward one destination, each oscillating ±eps around its base
// rate. If the attacker synchronizes the trials (it controls the drop
// timing, so it can), the aggregate swings by ±eps of total volume; if the
// flows stay unsynchronized the swing shrinks toward ±eps/√n. Both bounds
// are returned as peak-to-peak fractions of aggregate volume.
func DestinationFluctuation(n int, eps float64) (synced, unsynced float64) {
	if n <= 0 {
		return 0, 0
	}
	synced = 2 * eps
	unsynced = 2 * eps / math.Sqrt(float64(n))
	return
}
