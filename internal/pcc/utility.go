// Package pcc reimplements PCC Allegro (Dong et al., NSDI'15) — the
// performance-oriented congestion controller attacked in §4.2 of the paper
// — together with the MitM utility-equalizer attack that forces its rate
// to oscillate.
//
// PCC replaces TCP's hardwired control rules with online A/B experiments:
// time is sliced into monitor intervals (MIs); the sender tries rates
// (1+ε)·r and (1−ε)·r in randomized controlled trials, measures a utility
// built from throughput and loss, and moves in the direction of higher
// utility. If a trial pair is inconclusive it increases ε, up to a 5% cap.
// The §4.2 attacker drops just enough packets in whichever trial runs
// faster that the utilities tie: every trial is inconclusive, ε escalates
// to the cap, and the flow oscillates ±5% forever instead of converging.
package pcc

import "math"

// Utility maps one monitor interval's sending rate x (packets/second) and
// observed loss fraction L to a utility value. Comparisons are only ever
// made between MIs of the same flow, so units cancel.
type Utility func(x, loss float64) float64

// Allegro is PCC's default utility: u = T·sigmoid(L−0.05) − x·L with
// T = x·(1−L) and sigmoid α=100. The sigmoid collapses utility once loss
// exceeds the 5% cutoff, which is the safety brake the attacker's drop
// budget must stay under.
func Allegro(x, loss float64) float64 {
	t := x * (1 - loss)
	return t*sigmoid(100*(loss-0.05)) - x*loss
}

// Linear is the loss-linear ablation utility u = x·(1−L) − 10·x·L: no
// sigmoid cliff, so the equalizer needs a different (larger) drop budget.
// Used by the ablation bench comparing utility shapes under attack.
func Linear(x, loss float64) float64 {
	return x*(1-loss) - 10*x*loss
}

func sigmoid(y float64) float64 { return 1 / (1 + math.Exp(y)) }

// EqualizingDrop returns the drop probability an attacker must apply to a
// trial running at fast·r so that its utility under u ties with the
// opposite trial running at slow·r with base loss lossBase: it solves
// u(fast, eff(p)) = u(slow, lossBase) for p by bisection (utility is
// monotone decreasing in loss). With the trials tied, PCC's randomized
// controlled trial is inconclusive and ε escalates to its cap — the §4.2
// attack. Knowing u is Kerckhoff's principle (§2.1): the attacker knows
// everything about the system except secrets.
func EqualizingDrop(u Utility, fast, slow, lossBase float64) float64 {
	if fast <= slow {
		return 0
	}
	target := u(slow, lossBase)
	lo, hi := 0.0, 1.0
	for i := 0; i < 60; i++ {
		mid := (lo + hi) / 2
		eff := 1 - (1-lossBase)*(1-mid) // compound loss seen by the trial
		if u(fast, eff) > target {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}
