package pcc

import (
	"math"

	"dui/internal/netsim"
	"dui/internal/packet"
	"dui/internal/stats"
	"dui/internal/tcpflow"
)

// State is the sender's control state.
type State int

// Control states of the Allegro state machine.
const (
	Starting  State = iota // double the rate until utility drops
	Deciding               // 4-MI randomized controlled trial at r(1±ε)
	Adjusting              // move in the chosen direction with growing steps
)

// String renders the state name.
func (s State) String() string {
	switch s {
	case Starting:
		return "starting"
	case Deciding:
		return "deciding"
	default:
		return "adjusting"
	}
}

// Config parameterizes a PCC flow.
type Config struct {
	Key packet.FlowKey
	// StartRate/MinRate/MaxRate bound the sending rate in packets/s.
	StartRate, MinRate, MaxRate float64
	// PktSize is the wire size of each data packet (bytes).
	PktSize int
	// EpsMin is the trial granularity and escalation step (0.01); EpsMax
	// is the cap (0.05) that bounds the forced oscillation.
	EpsMin, EpsMax float64
	// MIDur is the monitor interval duration; 0 derives it from the RTT
	// (1.7×SRTT, floored at MinMI).
	MIDur, MinMI float64
	// Utility defaults to Allegro.
	Utility Utility
	// Duration stops the flow at this simulation time (0 = run forever).
	Duration float64
}

func (c *Config) defaults() {
	if c.StartRate <= 0 {
		c.StartRate = 100
	}
	if c.MinRate <= 0 {
		c.MinRate = 10
	}
	if c.MaxRate <= 0 {
		c.MaxRate = 1e5
	}
	if c.PktSize <= 0 {
		c.PktSize = 1250
	}
	if c.EpsMin <= 0 {
		c.EpsMin = 0.01
	}
	if c.EpsMax <= 0 {
		c.EpsMax = 0.05
	}
	if c.MinMI <= 0 {
		c.MinMI = 0.25
	}
	if c.Utility == nil {
		c.Utility = Allegro
	}
}

// MIRecord is the outcome of one monitor interval, kept for analysis.
type MIRecord struct {
	ID      int
	Start   float64
	Rate    float64
	Role    string // "start", "up", "down", "adjust", "filler"
	Sent    int
	Acked   int
	Loss    float64
	Utility float64
	Eps     float64
	State   State
}

// Sender is one PCC Allegro flow.
type Sender struct {
	net  *netsim.Network
	node *netsim.Node
	cfg  Config
	rng  *stats.RNG

	state State
	rate  float64 // current base rate r
	eps   float64

	// RCT bookkeeping.
	trialPlan    []float64 // rate multipliers for the pending trial MIs
	trialRoles   []string
	trialResults []*MIRecord
	adjustDir    float64
	adjustStep   int
	lastUtility  float64
	prevMIUtil   float64
	// pendingStart/pendingAdjust guard against re-evaluating the same
	// rate while an evaluation MI's result is still in flight (results
	// lag the MI end by ~1 RTT); fillers run in the meantime.
	pendingStart  bool
	pendingAdjust bool

	// Per-MI accounting.
	nextSeq  uint64
	ackSet   map[uint64]bool
	sentAt   map[uint64]float64 // RTT probes (sparse)
	srtt     float64
	records  []MIRecord
	epsTrace []float64
	stopped  bool
}

// Start launches a PCC flow from src to dst. The receiver echoes every
// data packet's sequence number; loss per MI is counted from the echoes.
func Start(src, dst *tcpflow.Endpoint, cfg Config, rng *stats.RNG) *Sender {
	cfg.defaults()
	s := &Sender{
		net:    src.Node().Net(),
		node:   src.Node(),
		cfg:    cfg,
		rng:    rng,
		state:  Starting,
		rate:   cfg.StartRate,
		eps:    cfg.EpsMin,
		ackSet: map[uint64]bool{},
		sentAt: map[uint64]float64{},
		srtt:   0.1,
	}
	s.prevMIUtil = math.Inf(-1)
	// Receiver: echo the sequence number of each arriving data packet.
	rk := cfg.Key.Reverse()
	dst.Register(cfg.Key, netsim.ReceiverFunc(func(now float64, p *packet.Packet) {
		if p.TCP == nil {
			return
		}
		echo := packet.NewTCP(rk.Src, rk.Dst, packet.TCPHeader{
			SrcPort: rk.SrcPort, DstPort: rk.DstPort,
			Ack: p.TCP.Seq, Flags: packet.FlagACK,
		}, 40)
		dst.Node().Send(echo)
	}))
	src.Register(rk, netsim.ReceiverFunc(s.onAck))
	s.net.Engine().After(0, func() { s.startMI(s.rate, "start") })
	return s
}

// Records returns all finalized MI records.
func (s *Sender) Records() []MIRecord { return s.records }

// Rate returns the current base rate (packets/s).
func (s *Sender) Rate() float64 { return s.rate }

// Eps returns the current trial amplitude ε.
func (s *Sender) Eps() float64 { return s.eps }

// State returns the control state.
func (s *Sender) State() State { return s.state }

// Stop halts the flow.
func (s *Sender) Stop() { s.stopped = true }

// miDuration returns the monitor interval length.
func (s *Sender) miDuration() float64 {
	if s.cfg.MIDur > 0 {
		return s.cfg.MIDur
	}
	d := 1.7 * s.srtt
	if d < s.cfg.MinMI {
		d = s.cfg.MinMI
	}
	return d
}

// startMI begins a monitor interval at the given rate and schedules its
// packet transmissions (uniform pacing) and its finalization.
func (s *Sender) startMI(rate float64, role string) {
	if s.stopped {
		return
	}
	now := s.net.Now()
	if s.cfg.Duration > 0 && now >= s.cfg.Duration {
		s.stopped = true
		return
	}
	dur := s.miDuration()
	rec := &MIRecord{
		ID: len(s.records) + len(s.trialResults) + 1, Start: now,
		Rate: rate, Role: role, Eps: s.eps, State: s.state,
	}
	switch role {
	case "start":
		s.pendingStart = true
	case "adjust":
		s.pendingAdjust = true
	}
	// Pace at exactly 1/rate spacing: the wire inter-packet gap IS the
	// rate signal (both for the receiver-side throughput and for any
	// observer), so it must not be quantized to the MI duration.
	n := int(rate * dur)
	if n < 1 {
		n = 1
	}
	gap := 1 / rate
	for i := 0; i < n; i++ {
		seq := s.nextSeq
		s.nextSeq++
		probe := i%16 == 0 // sparse RTT probes
		s.net.Engine().At(now+float64(i)*gap, func() {
			if s.stopped {
				return
			}
			if probe {
				s.sentAt[seq] = s.net.Now()
			}
			p := packet.NewTCP(s.cfg.Key.Src, s.cfg.Key.Dst, packet.TCPHeader{
				SrcPort: s.cfg.Key.SrcPort, DstPort: s.cfg.Key.DstPort,
				Seq: uint32(seq), Flags: packet.FlagACK,
			}, s.cfg.PktSize)
			s.node.Send(p)
		})
	}
	rec.Sent = n
	hi := s.nextSeq
	// The next MI starts back-to-back; results are finalized one RTT
	// (plus margin) after the MI ends so in-flight echoes are counted.
	s.net.Engine().At(now+dur, func() { s.nextMI() })
	s.net.Engine().At(now+dur+1.5*s.srtt+0.05, func() { s.finalizeMI(rec, hi) })
}

// finalizeMI computes loss and utility once echoes have had time to land.
func (s *Sender) finalizeMI(rec *MIRecord, hi uint64) {
	if s.stopped {
		return
	}
	acked := 0
	for seq := hi - uint64(rec.Sent); seq < hi; seq++ {
		if s.ackSet[seq] {
			acked++
			delete(s.ackSet, seq)
		}
	}
	rec.Acked = acked
	rec.Loss = 1 - float64(acked)/float64(rec.Sent)
	rec.Utility = s.cfg.Utility(rec.Rate, rec.Loss)
	s.records = append(s.records, *rec)
	s.onResult(rec)
}

// nextMI picks the next MI's rate according to the control state.
func (s *Sender) nextMI() {
	if s.stopped {
		return
	}
	if len(s.trialPlan) > 0 {
		mult := s.trialPlan[0]
		role := s.trialRoles[0]
		s.trialPlan = s.trialPlan[1:]
		s.trialRoles = s.trialRoles[1:]
		s.startMI(s.rate*mult, role)
		return
	}
	switch s.state {
	case Starting:
		if s.pendingStart {
			s.startMI(s.rate, "filler")
		} else {
			s.startMI(s.rate, "start")
		}
	case Deciding:
		// Waiting for trial results: keep sending at the base rate.
		s.startMI(s.rate, "filler")
	case Adjusting:
		if s.pendingAdjust {
			s.startMI(s.rate, "filler")
		} else {
			s.startMI(s.rate, "adjust")
		}
	}
}

// onResult advances the control state machine with one finalized MI.
func (s *Sender) onResult(rec *MIRecord) {
	s.epsTrace = append(s.epsTrace, s.eps)
	switch s.state {
	case Starting:
		if rec.Role != "start" {
			return
		}
		s.pendingStart = false
		if rec.Utility > s.prevMIUtil {
			s.prevMIUtil = rec.Utility
			s.rate = s.clamp(rec.Rate * 2)
			return
		}
		// Utility dropped: revert to the last good rate and decide.
		s.rate = s.clamp(rec.Rate / 2)
		s.enterDecision()
	case Deciding:
		if rec.Role == "up" || rec.Role == "down" {
			cp := *rec
			s.trialResults = append(s.trialResults, &cp)
			if len(s.trialResults) == 4 {
				s.decide()
			}
		}
	case Adjusting:
		if rec.Role != "adjust" {
			return
		}
		s.pendingAdjust = false
		if rec.Utility > s.lastUtility {
			s.lastUtility = rec.Utility
			s.adjustStep++
			s.rate = s.clamp(s.rate * (1 + s.adjustDir*float64(s.adjustStep)*s.cfg.EpsMin))
			return
		}
		// Utility fell: step back and re-run trials.
		s.rate = s.clamp(s.rate / (1 + s.adjustDir*float64(s.adjustStep)*s.cfg.EpsMin))
		s.enterDecision()
	}
}

// enterDecision plans the 4-MI randomized controlled trial: two pairs,
// each with one (1+ε) and one (1−ε) MI in random order.
func (s *Sender) enterDecision() {
	s.state = Deciding
	s.pendingStart = false
	s.pendingAdjust = false
	s.trialResults = s.trialResults[:0]
	s.trialPlan = s.trialPlan[:0]
	s.trialRoles = s.trialRoles[:0]
	for pair := 0; pair < 2; pair++ {
		up, down := 1+s.eps, 1-s.eps
		if s.rng.Bool(0.5) {
			s.trialPlan = append(s.trialPlan, up, down)
			s.trialRoles = append(s.trialRoles, "up", "down")
		} else {
			s.trialPlan = append(s.trialPlan, down, up)
			s.trialRoles = append(s.trialRoles, "down", "up")
		}
	}
}

// decide evaluates the completed RCT.
func (s *Sender) decide() {
	var ups, downs []*MIRecord
	for _, r := range s.trialResults {
		if r.Role == "up" {
			ups = append(ups, r)
		} else {
			downs = append(downs, r)
		}
	}
	upWins := ups[0].Utility > downs[0].Utility && ups[1].Utility > downs[1].Utility
	downWins := ups[0].Utility < downs[0].Utility && ups[1].Utility < downs[1].Utility
	s.trialResults = s.trialResults[:0]
	switch {
	case upWins:
		s.beginAdjust(+1, ups)
	case downWins:
		s.beginAdjust(-1, downs)
	default:
		// Inconclusive: stay, escalate ε — the state the §4.2 attacker
		// pins the flow into.
		s.eps = math.Min(s.eps+s.cfg.EpsMin, s.cfg.EpsMax)
		s.enterDecision()
	}
}

func (s *Sender) beginAdjust(dir float64, winners []*MIRecord) {
	s.state = Adjusting
	s.adjustDir = dir
	s.adjustStep = 1
	s.lastUtility = math.Max(winners[0].Utility, winners[1].Utility)
	s.eps = s.cfg.EpsMin
	s.rate = s.clamp(s.rate * (1 + dir*s.eps))
}

func (s *Sender) clamp(r float64) float64 {
	return math.Max(s.cfg.MinRate, math.Min(s.cfg.MaxRate, r))
}

// onAck records an echoed sequence number and an RTT sample.
func (s *Sender) onAck(now float64, p *packet.Packet) {
	if p.TCP == nil {
		return
	}
	seq := uint64(p.TCP.Ack)
	s.ackSet[seq] = true
	if at, ok := s.sentAt[seq]; ok {
		delete(s.sentAt, seq)
		rtt := now - at
		s.srtt = 0.875*s.srtt + 0.125*rtt
	}
}
