package pcc

import (
	"math"
	"testing"

	"dui/internal/stats"
)

func TestAllegroUtilityShape(t *testing.T) {
	// Increasing in rate at zero loss.
	if Allegro(200, 0) <= Allegro(100, 0) {
		t.Fatal("utility not increasing in rate")
	}
	// Decreasing in loss at fixed rate.
	if Allegro(100, 0.02) >= Allegro(100, 0) {
		t.Fatal("utility not decreasing in loss")
	}
	// The 5% sigmoid cliff: beyond the cutoff, utility collapses.
	if Allegro(100, 0.10) > 0 {
		t.Fatalf("utility above cutoff = %v, want negative", Allegro(100, 0.10))
	}
	// Homogeneous degree 1 in rate (units cancel in comparisons).
	if math.Abs(Allegro(200, 0.01)-2*Allegro(100, 0.01)) > 1e-9 {
		t.Fatal("utility not homogeneous")
	}
}

func TestEqualizingDropTiesUtilities(t *testing.T) {
	for _, eps := range []float64{0.01, 0.03, 0.05} {
		fast, slow := 1+eps, 1-eps
		p := EqualizingDrop(Allegro, fast, slow, 0)
		if p <= 0 || p >= 0.06 {
			t.Fatalf("eps=%v: drop %v outside the stealthy band", eps, p)
		}
		got := Allegro(fast, p)
		want := Allegro(slow, 0)
		if math.Abs(got-want) > 1e-6*math.Abs(want) {
			t.Fatalf("eps=%v: utilities not tied: %v vs %v", eps, got, want)
		}
	}
}

func TestEqualizingDropZeroWhenNotFaster(t *testing.T) {
	if EqualizingDrop(Allegro, 0.99, 1.01, 0) != 0 {
		t.Fatal("drop for slower trial must be zero")
	}
	if EqualizingDrop(Allegro, 1, 1, 0) != 0 {
		t.Fatal("drop for equal rates must be zero")
	}
}

func TestEqualizingDropCompoundsBaseLoss(t *testing.T) {
	p0 := EqualizingDrop(Allegro, 1.05, 0.95, 0)
	p1 := EqualizingDrop(Allegro, 1.05, 0.95, 0.01)
	if p1 >= p0 {
		t.Fatalf("with base loss already hurting the fast trial, extra drop should shrink: %v vs %v", p1, p0)
	}
}

// TestCleanConvergence checks PCC's own promise: without an attacker a
// flow climbs from its start rate to near the bottleneck capacity.
func TestCleanConvergence(t *testing.T) {
	res := RunOscillation(OscConfig{Duration: 90, Seed: 2})
	if len(res.Flows) != 1 {
		t.Fatal("flow count")
	}
	f := res.Flows[0]
	if f.MeanRateLate < 0.7*res.Config.CapacityPPS || f.MeanRateLate > 1.3*res.Config.CapacityPPS {
		t.Fatalf("late rate %v, want near capacity %v", f.MeanRateLate, res.Config.CapacityPPS)
	}
	if res.DropFraction != 0 {
		t.Fatal("no attacker in clean run")
	}
}

// TestAttackPreventsConvergence is the §4.2 headline: under the equalizer
// the flow stays pinned near its start rate instead of climbing to
// capacity, keeps fluctuating, and the attacker pays only a tiny drop
// budget.
func TestAttackPreventsConvergence(t *testing.T) {
	clean := RunOscillation(OscConfig{Duration: 90, Seed: 2})
	attacked := RunOscillation(OscConfig{Duration: 90, Seed: 2, Attack: true})
	f := attacked.Flows[0]
	if f.MeanRateLate > 0.4*clean.Flows[0].MeanRateLate {
		t.Fatalf("attacked flow converged anyway: %v vs clean %v", f.MeanRateLate, clean.Flows[0].MeanRateLate)
	}
	if f.OscAmplitude < 0.015 {
		t.Fatalf("no forced oscillation: amplitude %v", f.OscAmplitude)
	}
	// The flow never leaves the experiment loop — it keeps probing and
	// being punished, exactly "PCC's logic neutralized".
	if f.FinalState == Starting {
		t.Fatalf("flow stuck in startup, not in the experiment loop")
	}
	// The attack budget stays small — a few percent of packets at most.
	if attacked.DropFraction <= 0 || attacked.DropFraction > 0.08 {
		t.Fatalf("drop fraction = %v", attacked.DropFraction)
	}
}

// TestForcedOscillationModel pins the analytic §4.2 claim: with every
// trial tied, ε marches to the 5% cap and stays, so the flow fluctuates
// by ±5% forever.
func TestForcedOscillationModel(t *testing.T) {
	trace, amp := ForcedOscillation(0.01, 0.05, 10)
	want := []float64{0.01, 0.02, 0.03, 0.04, 0.05, 0.05, 0.05, 0.05, 0.05, 0.05}
	for i := range want {
		if math.Abs(trace[i]-want[i]) > 1e-12 {
			t.Fatalf("eps trace[%d] = %v, want %v", i, trace[i], want[i])
		}
	}
	if amp != 0.10 {
		t.Fatalf("amplitude = %v, want peak-to-peak 10%%", amp)
	}
	synced, unsynced := DestinationFluctuation(100, 0.05)
	if synced != 0.10 {
		t.Fatalf("synced fleet fluctuation = %v", synced)
	}
	if unsynced >= synced || unsynced <= 0 {
		t.Fatalf("unsynced fleet fluctuation = %v", unsynced)
	}
}

// TestFleetFluctuation: across many flows to one destination the attack
// both depresses and destabilizes the aggregate arrival rate.
func TestFleetFluctuation(t *testing.T) {
	clean := RunOscillation(OscConfig{Flows: 6, Duration: 80, Seed: 3})
	attacked := RunOscillation(OscConfig{Flows: 6, Duration: 80, Seed: 3, Attack: true})
	// Aggregate throughput collapses.
	cleanAgg := lateMean(clean.AggSeries, 80*2/3.0)
	attAgg := lateMean(attacked.AggSeries, 80*2/3.0)
	if attAgg > 0.5*cleanAgg {
		t.Fatalf("aggregate not depressed: %v vs %v", attAgg, cleanAgg)
	}
	// Relative fluctuation grows.
	if attacked.AggCV <= clean.AggCV {
		t.Fatalf("aggregate CV not increased: %v vs %v", attacked.AggCV, clean.AggCV)
	}
}

func lateMean(s *stats.Series, from float64) float64 {
	var sum stats.Summary
	for i := range s.Values {
		if s.Time(i) >= from {
			sum.Add(s.Values[i])
		}
	}
	return sum.Mean()
}

func TestOscillationDeterministic(t *testing.T) {
	a := RunOscillation(OscConfig{Duration: 40, Seed: 7, Attack: true})
	b := RunOscillation(OscConfig{Duration: 40, Seed: 7, Attack: true})
	if a.Flows[0].MeanRateLate != b.Flows[0].MeanRateLate || a.DropFraction != b.DropFraction {
		t.Fatalf("nondeterministic: %+v vs %+v", a.Flows[0], b.Flows[0])
	}
}

func TestStateString(t *testing.T) {
	if Starting.String() != "starting" || Deciding.String() != "deciding" || Adjusting.String() != "adjusting" {
		t.Fatal("state names")
	}
}
