package pcc

import (
	"context"
	"fmt"
	"math"

	"dui/internal/netsim"
	"dui/internal/packet"
	"dui/internal/runner"
	"dui/internal/stats"
	"dui/internal/tcpflow"
)

// OscConfig parameterizes the §4.2 experiment: one or many PCC flows, each
// through its own capacity-C access path toward a common destination, with
// or without the equalizer MitM on the shared pre-destination link.
type OscConfig struct {
	Flows int
	// CapacityPPS is each flow's bottleneck capacity in packets/s.
	CapacityPPS float64
	StartRate   float64
	Attack      bool
	// Utility selects the victim's utility (nil = Allegro). The attacker
	// is always assumed to know it.
	Utility  Utility
	Duration float64
	Seed     uint64
	// MinMI is the monitor interval floor (default 0.5 s — large enough
	// that per-MI loss is not dominated by quantization).
	MinMI float64
	// EpsMax caps the victim's trial amplitude (0 = the sender default
	// 0.05). The supervisor's clamped deployment lowers it — see
	// supervisor.ClampedPCCConfig.
	EpsMax float64
	// EqDetectMargin, EqExtraDrop and EqActiveFrom tune the equalizer
	// when Attack is set (0 = the Equalizer defaults) — the attack knobs
	// internal/advsearch searches over.
	EqDetectMargin float64
	EqExtraDrop    float64
	EqActiveFrom   float64
	// Debug prints per-MI records of flow 0 (test diagnostics only).
	Debug bool
	// Chaos, if set, runs once routes are computed and before any flow
	// starts: bottlenecks are the per-flow rIn–rOut capacity links,
	// shared the rOut–destination link. The fault-injection point for
	// the robustness matrix; nil leaves the run bit-identical.
	Chaos func(nw *netsim.Network, bottlenecks []*netsim.Link, shared *netsim.Link) `json:"-"`
}

// Defaults fills a representative configuration.
func (c OscConfig) Defaults() OscConfig {
	if c.Flows <= 0 {
		c.Flows = 1
	}
	if c.CapacityPPS <= 0 {
		c.CapacityPPS = 1000
	}
	if c.StartRate <= 0 {
		c.StartRate = 100
	}
	if c.Duration <= 0 {
		c.Duration = 120
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.MinMI <= 0 {
		c.MinMI = 0.5
	}
	return c
}

// FlowOutcome summarizes one flow at the end of the run.
type FlowOutcome struct {
	// MeanRateLate is the mean base rate over the last third of the run.
	MeanRateLate float64
	// OscAmplitude is (max-min)/mean of the per-MI rates over the last
	// third — the paper's ±5% forced fluctuation shows up here.
	OscAmplitude float64
	FinalEps     float64
	// MaxEps is the largest trial amplitude reached over the whole run
	// (ε resets whenever a decision round concludes, so the escalation
	// the attack causes shows in the maximum, not the final value).
	MaxEps     float64
	FinalState State
}

// OscResult is the outcome of the E4 experiment.
type OscResult struct {
	Config OscConfig
	Flows  []FlowOutcome
	// MeanRateLate averages the per-flow late rates.
	MeanRateLate float64
	// AggSeries is the destination's arrival rate (packets/s per bin).
	AggSeries *stats.Series
	// AggCV is the coefficient of variation of the aggregate arrival
	// rate over the last third — the destination-side traffic
	// fluctuation the attacker manufactures.
	AggCV float64
	// DropFraction is the attacker's budget (0 when Attack is false).
	DropFraction float64
	// Records holds flow 0's monitor-interval history (supervisor input).
	Records []MIRecord
}

// OscSweep runs several independent E4 configurations (clean vs
// attacked, different utilities, fleet sizes …) on the parallel trial
// runner and returns the results in configuration order. Each
// configuration is fully seeded by its own Seed field, so the output is
// identical at any worker count (0 = GOMAXPROCS).
func OscSweep(cfgs []OscConfig, workers int) []*OscResult {
	results, _ := runner.Map(context.Background(), cfgs, 0, runner.Config{Workers: workers},
		func(_ context.Context, t runner.Trial, cfg OscConfig) (*OscResult, error) {
			res := RunOscillation(cfg)
			t.ReportVirtual(res.Config.Duration)
			return res, nil
		})
	return results
}

// RunOscillation runs E4. Topology per flow i:
//
//	sender_i ── rIn ──(capacity C)── rOut ── destination
//
// with the equalizer tap (when attacking) on the shared rOut–destination
// link, where a single MitM vantage point sees every flow to the victim
// destination.
func RunOscillation(cfg OscConfig) *OscResult {
	cfg = cfg.Defaults()
	rng := stats.NewRNG(cfg.Seed)
	res := &OscResult{Config: cfg}

	nw := netsim.New()
	dst := nw.AddHost("dst", packet.MustParseAddr("10.9.0.1"))
	rOut := nw.AddRouter("rOut")
	shared := nw.Connect(rOut, dst, 0, 0.005, 0)
	senders := make([]*netsim.Node, cfg.Flows)
	bottlenecks := make([]*netsim.Link, cfg.Flows)
	for i := range senders {
		senders[i] = nw.AddHost(fmt.Sprintf("s%d", i), packet.MustParseAddr("20.0.0.1")+packet.Addr(i))
		rIn := nw.AddRouter(fmt.Sprintf("rIn%d", i))
		nw.Connect(senders[i], rIn, 0, 0.005, 0)
		// Per-flow bottleneck: capacity C pps at the flow's packet size.
		bottlenecks[i] = nw.Connect(rIn, rOut, cfg.CapacityPPS*1250*8, 0.005, 50)
	}
	nw.ComputeRoutes()
	if cfg.Chaos != nil {
		cfg.Chaos(nw, bottlenecks, shared)
	}

	var eq *Equalizer
	if cfg.Attack {
		util := cfg.Utility
		if util == nil {
			util = Allegro
		}
		eq = NewEqualizer(util, rng.Child())
		if cfg.EqDetectMargin > 0 {
			eq.DetectMargin = cfg.EqDetectMargin
		}
		if cfg.EqExtraDrop > 0 {
			eq.ExtraDrop = cfg.EqExtraDrop
		}
		eq.ActiveFrom = cfg.EqActiveFrom
		if cfg.Debug {
			eq.DebugClassify = func(now, rate, base float64, kind string, sb int) {
				fmt.Printf("  [eq t=%5.2f rate=%7.2f base=%7.2f %s sinceBase=%d]\n", now, rate, base, kind, sb)
			}
		}
		shared.AttachTap(eq)
	}

	// Destination arrival-rate accounting.
	bin := 0.5
	agg := stats.NewSeries(0, bin, int(cfg.Duration/bin))
	de := tcpflow.NewEndpoint(dst)
	flows := make([]*Sender, cfg.Flows)
	for i := range flows {
		key := packet.FlowKey{
			Src: senders[i].Addr, Dst: dst.Addr,
			SrcPort: uint16(4000 + i), DstPort: 8080, Proto: packet.ProtoTCP,
		}
		se := tcpflow.NewEndpoint(senders[i])
		flows[i] = Start(se, de, Config{
			Key: key, StartRate: cfg.StartRate, MaxRate: 4 * cfg.CapacityPPS,
			Utility: cfg.Utility, MinMI: cfg.MinMI, Duration: cfg.Duration,
			EpsMax: cfg.EpsMax,
		}, rng.Child())
	}
	// Wrap the destination receiver to count arrivals into bins: the
	// endpoint demux already delivers to per-flow receivers, so count at
	// the node level via a tap on the shared link's delivery side.
	shared.AttachTap(netsim.TapFunc(func(now float64, p *packet.Packet, dir netsim.Direction) netsim.TapVerdict {
		if dir == netsim.AToB && p.TCP != nil && p.Size > 60 {
			agg.Values[agg.Index(now)] += 1 / bin
		}
		return netsim.TapVerdict{}
	}))

	nw.RunUntil(cfg.Duration)

	if cfg.Debug {
		for _, r := range flows[0].Records() {
			fmt.Printf("t=%5.1f rate=%6.1f role=%-7s loss=%.3f u=%8.2f eps=%.2f st=%s\n",
				r.Start, r.Rate, r.Role, r.Loss, r.Utility, r.Eps, r.State)
		}
	}

	lateFrom := cfg.Duration * 2 / 3
	var lateMean stats.Summary
	for _, f := range flows {
		var rates []float64
		for _, r := range f.Records() {
			if r.Start >= lateFrom {
				rates = append(rates, r.Rate)
			}
		}
		out := FlowOutcome{FinalEps: f.Eps(), FinalState: f.State()}
		for _, r := range f.Records() {
			if r.Eps > out.MaxEps {
				out.MaxEps = r.Eps
			}
		}
		if len(rates) > 0 {
			mean := stats.Mean(rates)
			out.MeanRateLate = mean
			lo, hi := rates[0], rates[0]
			for _, r := range rates {
				lo = math.Min(lo, r)
				hi = math.Max(hi, r)
			}
			if mean > 0 {
				out.OscAmplitude = (hi - lo) / mean
			}
			lateMean.Add(mean)
		}
		res.Flows = append(res.Flows, out)
	}
	res.MeanRateLate = lateMean.Mean()
	res.Records = flows[0].Records()
	res.AggSeries = agg
	var aggLate stats.Summary
	for i := range agg.Values {
		if agg.Time(i) >= lateFrom {
			aggLate.Add(agg.Values[i])
		}
	}
	if aggLate.Mean() > 0 {
		res.AggCV = aggLate.Stddev() / aggLate.Mean()
	}
	if eq != nil {
		res.DropFraction = eq.DropFraction()
	}
	return res
}
