package pcc

import (
	"testing"

	"dui/internal/netsim"
	"dui/internal/packet"
	"dui/internal/stats"
	"dui/internal/tcpflow"
)

// newIdleSender builds a sender on a throw-away network purely to unit-test
// the control state machine via onResult, without running traffic.
func newIdleSender(t *testing.T) *Sender {
	t.Helper()
	nw := netsim.New()
	src := nw.AddHost("s", 1)
	dst := nw.AddHost("d", 2)
	nw.Connect(src, dst, 0, 0.001, 0)
	nw.ComputeRoutes()
	se, de := tcpflow.NewEndpoint(src), tcpflow.NewEndpoint(dst)
	s := Start(se, de, Config{
		Key:      packet.FlowKey{Src: 1, Dst: 2, SrcPort: 1, DstPort: 2, Proto: packet.ProtoTCP},
		Duration: 0.001, // effectively no traffic
	}, stats.NewRNG(1))
	nw.RunUntil(0.01)
	s.Stop()
	s.stopped = false // re-enable the state machine for direct driving
	return s
}

func trial(rate float64, role string, util float64) *MIRecord {
	return &MIRecord{Rate: rate, Role: role, Utility: util}
}

// TestDecideUpWins: both pairs favor (1+eps) -> adjusting upward.
func TestDecideUpWins(t *testing.T) {
	s := newIdleSender(t)
	s.state = Deciding
	s.rate = 100
	s.eps = 0.01
	for _, r := range []*MIRecord{
		trial(101, "up", 10), trial(99, "down", 9),
		trial(101, "up", 10.5), trial(99, "down", 9.5),
	} {
		s.trialResults = append(s.trialResults, r)
	}
	s.decide()
	if s.state != Adjusting || s.adjustDir != 1 {
		t.Fatalf("state=%v dir=%v", s.state, s.adjustDir)
	}
	if s.rate <= 100 {
		t.Fatalf("rate did not move up: %v", s.rate)
	}
}

// TestDecideDownWins: both pairs favor (1-eps) -> adjusting downward.
func TestDecideDownWins(t *testing.T) {
	s := newIdleSender(t)
	s.state = Deciding
	s.rate = 100
	s.eps = 0.01
	for _, r := range []*MIRecord{
		trial(101, "up", 8), trial(99, "down", 9),
		trial(101, "up", 8.5), trial(99, "down", 9.5),
	} {
		s.trialResults = append(s.trialResults, r)
	}
	s.decide()
	if s.state != Adjusting || s.adjustDir != -1 {
		t.Fatalf("state=%v dir=%v", s.state, s.adjustDir)
	}
	if s.rate >= 100 {
		t.Fatalf("rate did not move down: %v", s.rate)
	}
}

// TestDecideInconclusiveEscalates: mixed pairs -> stay, eps += eps_min,
// capped at eps_max — the exact state the §4.2 attacker forces.
func TestDecideInconclusiveEscalates(t *testing.T) {
	s := newIdleSender(t)
	s.rate = 100
	s.state = Deciding
	s.eps = 0.01
	for round := 0; round < 10; round++ {
		s.trialResults = s.trialResults[:0]
		for _, r := range []*MIRecord{
			trial(100*(1+s.eps), "up", 10), trial(100*(1-s.eps), "down", 9),
			trial(100*(1+s.eps), "up", 8), trial(100*(1-s.eps), "down", 9.5),
		} {
			s.trialResults = append(s.trialResults, r)
		}
		s.decide()
		if s.state != Deciding {
			t.Fatalf("left deciding on inconclusive round %d", round)
		}
		if s.rate != 100 {
			t.Fatalf("rate moved on inconclusive: %v", s.rate)
		}
	}
	if s.eps != 0.05 {
		t.Fatalf("eps = %v, want capped at 0.05", s.eps)
	}
}

// TestClampBounds: rate never leaves [MinRate, MaxRate].
func TestClampBounds(t *testing.T) {
	s := newIdleSender(t)
	if got := s.clamp(1e9); got != s.cfg.MaxRate {
		t.Fatalf("clamp high = %v", got)
	}
	if got := s.clamp(0); got != s.cfg.MinRate {
		t.Fatalf("clamp low = %v", got)
	}
}
