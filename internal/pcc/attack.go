package pcc

import (
	"sort"

	"dui/internal/netsim"
	"dui/internal/packet"
	"dui/internal/stats"
)

// Equalizer is the §4.2 MitM attack: a link tap that tracks each PCC
// flow's sending rate, recognizes the faster (1+ε) trials of the
// randomized controlled experiment from their packet spacing, and drops
// exactly enough of their packets that the measured utility ties with the
// slower trial. Every trial becomes inconclusive, ε escalates to the 5%
// cap, and the flow oscillates without converging — "not only is PCC's
// logic neutralized, it is effectively a tool for the attacker".
//
// The attacker needs no protocol cooperation: rate and monitor-interval
// boundaries are inferred from packet timing ("easy to track in the data
// plane"), and the utility function is public (Kerckhoff).
type Equalizer struct {
	// Util is the utility the victim optimizes (known to the attacker).
	Util Utility
	// Sel restricts the attack to matching packets (nil = all TCP data).
	Sel func(*packet.Packet) bool
	// DetectMargin is the relative rate excess over baseline treated as
	// a fast trial (default 0.4%: below the ε_min=1% trial amplitude,
	// above pacing noise).
	DetectMargin float64
	// ExtraDrop is the loss margin added on top of the exact equalizing
	// drop so the punished fast trial lands decisively below its slow
	// counterpart (default 0.03). Smaller margins cost less budget but
	// risk ties resolving in the victim's favor — the knob the cost
	// search in internal/advsearch explores.
	ExtraDrop float64
	// ActiveFrom delays the attack: packets before this time pass
	// untouched (0 = attack from the start). Phase tracking still runs so
	// the base-rate estimate is warm when the attack engages.
	ActiveFrom float64

	rng   *stats.RNG
	flows map[packet.FlowKey]*eqFlow

	// Stats: attack budget accounting.
	Seen, Dropped uint64

	// DebugClassify, if set, observes each phase classification (test
	// diagnostics).
	DebugClassify func(now, rate, base float64, kind string, sinceBase int)
}

// eqFlow tracks one victim flow. PCC paces uniformly within a monitor
// interval, so packet spacing is piecewise constant: a change in spacing
// marks an MI boundary. The attacker segments arrivals into phases and
// keeps a ring of recent phase rates; the median phase rate is the flow's
// base rate r, against which the current phase is classified.
type eqFlow struct {
	prev     float64 // last arrival time
	havePrev bool
	curRate  float64 // running mean rate of the current phase
	curCount int
	phases   []float64 // ring of completed phase rates
	phasePos int
	// Punishment of fast phases: exactly one of the two (1+ε) trials in
	// each 4-MI decision round is degraded below its (1−ε) counterpart
	// while the other passes untouched, so the round is inconclusive *by
	// construction* (never "both pairs agree") and ε escalates
	// deterministically to the cap. Rounds are delimited by base-rate
	// phases (PCC fills with base-rate MIs between rounds), so the rule
	// is: punish the first fast phase after each base-rate phase.
	sinceBase  int
	confirmed  bool // spacing confirmed by a second packet
	classified bool // punish decision taken for this phase
	punishCur  bool
	credit     float64 // deterministic drop accumulator
}

const eqPhases = 12

// NewEqualizer returns an equalizer attack using the given utility model.
func NewEqualizer(u Utility, rng *stats.RNG) *Equalizer {
	return &Equalizer{
		Util:         u,
		DetectMargin: 0.004,
		ExtraDrop:    0.03,
		rng:          rng,
		flows:        map[packet.FlowKey]*eqFlow{},
	}
}

// DropFraction returns the fraction of observed packets the attack
// dropped — the paper's point that "tampering with only a small fraction
// of traffic" suffices.
func (e *Equalizer) DropFraction() float64 {
	if e.Seen == 0 {
		return 0
	}
	return float64(e.Dropped) / float64(e.Seen)
}

// Intercept implements netsim.Tap.
func (e *Equalizer) Intercept(now float64, p *packet.Packet, dir netsim.Direction) netsim.TapVerdict {
	if p.TCP == nil || p.Size <= 60 {
		return netsim.TapVerdict{} // ignore the echo/ack direction
	}
	if e.Sel != nil && !e.Sel(p) {
		return netsim.TapVerdict{}
	}
	k := p.Flow()
	f := e.flows[k]
	if f == nil {
		f = &eqFlow{}
		e.flows[k] = f
	}
	e.Seen++
	if !f.havePrev {
		f.prev = now
		f.havePrev = true
		return netsim.TapVerdict{}
	}
	gap := now - f.prev
	f.prev = now
	if gap <= 0 {
		return netsim.TapVerdict{}
	}
	inst := 1 / gap
	// Segment into phases: a spacing change beyond the margin is an MI
	// boundary (PCC paces uniformly within an MI). The first packet of a
	// phase is never acted on: MI-boundary gaps produce one-packet
	// artifacts whose rate is meaningless; a phase is classified once a
	// second packet confirms its spacing.
	switch {
	case f.curCount == 0:
		f.curRate, f.curCount = inst, 1
		f.confirmed, f.classified, f.punishCur = false, false, false
	case abs(inst-f.curRate)/f.curRate > e.DetectMargin:
		if f.confirmed {
			f.pushPhase(f.curRate)
		}
		f.curRate, f.curCount = inst, 1
		f.confirmed, f.classified, f.punishCur = false, false, false
	default:
		f.curRate = (f.curRate*float64(f.curCount) + inst) / float64(f.curCount+1)
		f.curCount++
		f.confirmed = true
	}
	base := f.medianPhase()
	if base == 0 {
		return netsim.TapVerdict{}
	}
	if f.confirmed && !f.classified {
		f.classified = true
		kind := "slow"
		switch {
		case f.curRate > base*(1+e.DetectMargin):
			// A fast phase: a (1+ε) trial, an adjusting step, or a
			// startup doubling. Punish the first one of each round so
			// startup stalls immediately and every decision round has
			// exactly one degraded up-trial.
			f.sinceBase++
			f.punishCur = f.sinceBase == 1
			kind = "fast"
		case f.curRate > base*(1-e.DetectMargin):
			// A base-rate phase (filler between rounds): new round.
			f.sinceBase = 0
			kind = "base"
		}
		if e.DebugClassify != nil {
			e.DebugClassify(now, f.curRate, base, kind, f.sinceBase)
		}
	}
	if !f.punishCur || now < e.ActiveFrom {
		return netsim.TapVerdict{}
	}
	// Degrade the punished fast phase decisively below its slow
	// counterpart: the equalizing drop plus a margin. Loss stays in the
	// single-digit percent range — small, targeted tampering. Drops are
	// credit-scheduled (deterministic) rather than Bernoulli so the
	// induced loss has minimal variance: the optimal attacker leaves
	// nothing to chance.
	ratio := f.curRate / base
	slow := 2 - ratio
	if slow < 0.5 {
		slow = 0.5
	}
	drop := EqualizingDrop(e.Util, ratio, slow, 0) + e.ExtraDrop
	f.credit += drop
	if f.credit >= 1 {
		f.credit--
		e.Dropped++
		return netsim.TapVerdict{Drop: true}
	}
	return netsim.TapVerdict{}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func (f *eqFlow) pushPhase(r float64) {
	if len(f.phases) < eqPhases {
		f.phases = append(f.phases, r)
		return
	}
	f.phases[f.phasePos] = r
	f.phasePos = (f.phasePos + 1) % eqPhases
}

// medianPhase estimates the flow's base rate from the recent phase rates.
// A plain median fails once trial and adjusting phases outnumber base-rate
// fillers, so the rates are clustered into levels (0.5% tolerance) first:
// PCC's trials sit symmetrically around the base rate, so the middle level
// is the base; during startup (two levels: base and double) the lower one
// is.
func (f *eqFlow) medianPhase() float64 {
	if len(f.phases) == 0 {
		return 0
	}
	tmp := make([]float64, len(f.phases))
	copy(tmp, f.phases)
	sort.Float64s(tmp)
	var centers []float64
	var sum float64
	var n int
	for i, r := range tmp {
		if n > 0 && r > (sum/float64(n))*1.005 {
			centers = append(centers, sum/float64(n))
			sum, n = 0, 0
		}
		sum += r
		n++
		if i == len(tmp)-1 {
			centers = append(centers, sum/float64(n))
		}
	}
	switch len(centers) {
	case 1:
		return centers[0]
	case 2:
		return centers[0]
	default:
		return centers[len(centers)/2]
	}
}
