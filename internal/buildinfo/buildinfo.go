// Package buildinfo identifies the code version a binary was built from,
// for two consumers: the `-version` flag every cmd/ binary carries (via
// internal/cli), and the campaign result cache (internal/campaign), whose
// keys must change whenever the code changes so a cached verdict is never
// served across a code revision.
//
// The identity comes from runtime/debug.ReadBuildInfo: the main module's
// version plus the VCS revision stamped by `go build` (suffixed ".dirty"
// when the working tree had local modifications). Dev trees — `go test`
// binaries and builds without VCS stamping — fall back to a stable FNV-1a
// hash of the build settings, so the identifier is still deterministic for
// a given toolchain and configuration, just not content-addressed to the
// source. Cache correctness across source edits therefore relies on VCS
// stamping; the fallback exists so dev-tree identifiers are stable rather
// than empty.
package buildinfo

import (
	"fmt"
	"hash/fnv"
	"runtime"
	"runtime/debug"
	"sort"
	"sync"
)

// Info is the resolved build identity.
type Info struct {
	// Module is the main module path ("dui" for this repository).
	Module string
	// ModuleVersion is the main module's version ("(devel)" in dev trees).
	ModuleVersion string
	// Revision identifies the source the binary was built from: the VCS
	// commit hash (plus ".dirty" for a modified tree) when stamped, else
	// "dev-<fnv64 of the build settings>". Never empty.
	Revision string
	// GoVersion is the toolchain that built the binary.
	GoVersion string
}

var (
	once   sync.Once
	cached Info
)

// Get resolves the build identity once and returns it.
func Get() Info {
	once.Do(func() { cached = resolve(debug.ReadBuildInfo()) })
	return cached
}

// resolve computes the Info from a (possibly absent) debug.BuildInfo.
// Split from Get so tests can exercise the stamped and fallback paths.
func resolve(bi *debug.BuildInfo, ok bool) Info {
	info := Info{
		Module:        "unknown",
		ModuleVersion: "(devel)",
		GoVersion:     runtime.Version(),
	}
	if !ok || bi == nil {
		info.Revision = "dev-0000000000000000"
		return info
	}
	if bi.Main.Path != "" {
		info.Module = bi.Main.Path
	}
	if bi.Main.Version != "" {
		info.ModuleVersion = bi.Main.Version
	}
	var revision, modified string
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			revision = s.Value
		case "vcs.modified":
			modified = s.Value
		}
	}
	switch {
	case revision != "" && modified == "true":
		info.Revision = revision + ".dirty"
	case revision != "":
		info.Revision = revision
	default:
		info.Revision = fmt.Sprintf("dev-%016x", settingsHash(bi))
	}
	return info
}

// settingsHash folds the build settings (sorted, so map-order never leaks
// in), module identity, and toolchain into one FNV-1a 64 value — the
// stable dev-tree fallback revision.
func settingsHash(bi *debug.BuildInfo) uint64 {
	lines := make([]string, 0, len(bi.Settings)+3)
	lines = append(lines, bi.Main.Path, bi.Main.Version, runtime.Version())
	for _, s := range bi.Settings {
		lines = append(lines, s.Key+"="+s.Value)
	}
	sort.Strings(lines)
	h := fnv.New64a()
	for _, l := range lines {
		h.Write([]byte(l))
		h.Write([]byte{'\n'})
	}
	return h.Sum64()
}

// Revision is shorthand for Get().Revision — the cache-key ingredient.
func Revision() string { return Get().Revision }

// String renders the identity for -version output, e.g.
// "dui (devel) rev 1a2b3c4d.dirty go1.22.0".
func String() string {
	i := Get()
	return fmt.Sprintf("%s %s rev %s %s", i.Module, i.ModuleVersion, i.Revision, i.GoVersion)
}
