package buildinfo

import (
	"runtime/debug"
	"strings"
	"testing"
)

// TestGetStable asserts the resolved identity is non-empty and stable
// across calls — cache keys built from it must not wobble within a
// process.
func TestGetStable(t *testing.T) {
	a, b := Get(), Get()
	if a != b {
		t.Fatalf("Get not stable: %+v vs %+v", a, b)
	}
	if a.Revision == "" || a.GoVersion == "" || a.Module == "" {
		t.Fatalf("incomplete identity: %+v", a)
	}
	if !strings.Contains(String(), a.Revision) {
		t.Fatalf("String() %q does not carry the revision %q", String(), a.Revision)
	}
}

// TestResolveStamped covers the VCS-stamped path, including the dirty-tree
// suffix.
func TestResolveStamped(t *testing.T) {
	bi := &debug.BuildInfo{
		Main: debug.Module{Path: "dui", Version: "v1.2.3"},
		Settings: []debug.BuildSetting{
			{Key: "vcs.revision", Value: "abc123"},
			{Key: "vcs.modified", Value: "true"},
		},
	}
	got := resolve(bi, true)
	if got.Revision != "abc123.dirty" {
		t.Fatalf("dirty revision = %q, want abc123.dirty", got.Revision)
	}
	bi.Settings[1].Value = "false"
	if got := resolve(bi, true); got.Revision != "abc123" {
		t.Fatalf("clean revision = %q, want abc123", got.Revision)
	}
	if got.Module != "dui" || got.ModuleVersion != "v1.2.3" {
		t.Fatalf("module identity lost: %+v", got)
	}
}

// TestResolveFallback covers dev trees: no VCS stamping yields a stable
// dev-<hash> revision that changes with the build settings.
func TestResolveFallback(t *testing.T) {
	bi := &debug.BuildInfo{
		Main: debug.Module{Path: "dui", Version: "(devel)"},
		Settings: []debug.BuildSetting{
			{Key: "-tags", Value: "netgo"},
		},
	}
	a := resolve(bi, true)
	if !strings.HasPrefix(a.Revision, "dev-") || len(a.Revision) != len("dev-")+16 {
		t.Fatalf("fallback revision = %q, want dev-<16 hex>", a.Revision)
	}
	if b := resolve(bi, true); b.Revision != a.Revision {
		t.Fatalf("fallback not stable: %q vs %q", a.Revision, b.Revision)
	}
	bi.Settings[0].Value = "othertags"
	if c := resolve(bi, true); c.Revision == a.Revision {
		t.Fatal("fallback revision ignores build settings")
	}
	if got := resolve(nil, false); got.Revision != "dev-0000000000000000" {
		t.Fatalf("no-build-info revision = %q", got.Revision)
	}
}
