package dui

// Documentation and formatting lint, run as part of the ordinary test
// suite (and therefore by the CI `check` job). Two layers:
//
//   - every .go file in the repository must be gofmt-clean and every
//     package must carry a package comment — documentation is a stated
//     deliverable of this reproduction, so a missing doc block is a test
//     failure, not a style nit;
//   - the determinism-critical packages (internal/netsim, internal/stats,
//     internal/runner) are held to the stricter godoc standard: every
//     exported top-level identifier must have a doc comment, because
//     their comments carry the engine's ordering and seeding contracts.

import (
	"bytes"
	"go/ast"
	"go/format"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// goFiles walks the repository and returns every tracked .go file,
// skipping testdata and hidden directories.
func goFiles(t *testing.T) []string {
	t.Helper()
	var files []string
	err := filepath.WalkDir(".", func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name != "." && (strings.HasPrefix(name, ".") || name == "testdata") {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") {
			files = append(files, path)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("walking repository: %v", err)
	}
	if len(files) == 0 {
		t.Fatal("found no .go files — doclint is walking the wrong root")
	}
	return files
}

// TestGofmtClean asserts every .go file is unchanged by gofmt. The CI
// check job runs the suite, so a formatting regression fails the build
// rather than waiting for review.
func TestGofmtClean(t *testing.T) {
	for _, path := range goFiles(t) {
		src, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		want, err := format.Source(src)
		if err != nil {
			t.Errorf("%s: gofmt: %v", path, err)
			continue
		}
		if !bytes.Equal(src, want) {
			t.Errorf("%s: not gofmt-clean (run gofmt -w %s)", path, path)
		}
	}
}

// TestPackagesHaveDocComments asserts every package directory has at least
// one file with a package doc comment (test-only packages exempt).
func TestPackagesHaveDocComments(t *testing.T) {
	documented := map[string]bool{} // package dir -> has a package comment
	fset := token.NewFileSet()
	for _, path := range goFiles(t) {
		if strings.HasSuffix(path, "_test.go") {
			continue
		}
		dir := filepath.Dir(path)
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.PackageClauseOnly)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		if _, seen := documented[dir]; !seen {
			documented[dir] = false
		}
		if f.Doc != nil {
			documented[dir] = true
		}
	}
	for dir, ok := range documented {
		if !ok {
			t.Errorf("package in %s has no package doc comment in any file", dir)
		}
	}
}

// strictDocPackages are held to full godoc coverage: their comments state
// the determinism contracts (event ordering, seed derivation, worker-count
// independence) that the rest of the repository builds on.
var strictDocPackages = []string{
	"internal/netsim",
	"internal/stats",
	"internal/runner",
}

// TestExportedIdentifiersDocumented asserts every exported top-level
// declaration in the strict packages carries a doc comment.
func TestExportedIdentifiersDocumented(t *testing.T) {
	for _, dir := range strictDocPackages {
		fset := token.NewFileSet()
		pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
			return !strings.HasSuffix(fi.Name(), "_test.go")
		}, parser.ParseComments)
		if err != nil {
			t.Fatalf("%s: %v", dir, err)
		}
		for _, pkg := range pkgs {
			for path, f := range pkg.Files {
				for _, decl := range f.Decls {
					checkDeclDocs(t, fset, path, decl)
				}
			}
		}
	}
}

// checkDeclDocs reports exported declarations without doc comments.
func checkDeclDocs(t *testing.T, fset *token.FileSet, path string, decl ast.Decl) {
	t.Helper()
	pos := func(n ast.Node) string { return fset.Position(n.Pos()).String() }
	switch d := decl.(type) {
	case *ast.FuncDecl:
		if d.Name.IsExported() && d.Doc == nil {
			t.Errorf("%s: exported func %s has no doc comment", pos(d), d.Name.Name)
		}
	case *ast.GenDecl:
		// A doc comment on the gen decl covers a grouped block (var/const
		// groups commonly document the group once).
		groupDoc := d.Doc != nil
		for _, spec := range d.Specs {
			switch s := spec.(type) {
			case *ast.TypeSpec:
				if s.Name.IsExported() && s.Doc == nil && !groupDoc {
					t.Errorf("%s: exported type %s has no doc comment", pos(s), s.Name.Name)
				}
			case *ast.ValueSpec:
				if s.Doc != nil || s.Comment != nil || groupDoc {
					continue
				}
				for _, name := range s.Names {
					if name.IsExported() {
						t.Errorf("%s: exported %s has no doc comment", pos(s), name.Name)
					}
				}
			}
		}
	}
	_ = path
}
