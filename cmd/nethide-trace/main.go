// Command nethide-trace runs the §4.3 experiments: NetHide-style topology
// obfuscation (security/accuracy/utility trade-off across topologies and
// density caps), the traceroute view an external prober reconstructs, the
// link-flooding attacker's degraded success, and the malicious-operator
// variant that hides the true bottleneck link entirely.
package main

import (
	"fmt"

	"dui"
	"dui/internal/cli"
	"dui/internal/graph"
	"dui/internal/nethide"
	"dui/internal/stats"
)

func main() {
	var (
		seed     = cli.Seed("")
		parallel = cli.Parallel("trial workers for the cap sweep (0 = all cores; results identical at any setting)")
	)
	cli.Parse("nethide-trace")

	topos := []struct {
		name string
		g    *graph.Graph
	}{
		{"abilene", dui.Abilene()},
		{"fattree4", dui.FatTree(4)},
		{"rand16", graph.RandomConnected(16, 24, stats.NewRNG(*seed))},
	}

	fmt.Printf("§4.3 / NetHide — topology obfuscation and traceroute deception\n\n")
	fmt.Printf("%-9s %5s | %8s %8s | %8s %8s | %12s\n",
		"topology", "cap", "physMax", "virtMax", "accuracy", "utility", "attackSuccess")
	for _, tc := range topos {
		pairs := nethide.AllPairs(tc.g)
		phys := nethide.ShortestPaths(tc.g, pairs)
		_, physMax := phys.MaxDensity()
		caps := make([]int, 0, 2)
		for _, frac := range []float64{0.75, 0.5} {
			caps = append(caps, int(frac*float64(physMax)))
		}
		for _, row := range nethide.SweepCaps(tc.g, pairs, caps, dui.NetHideConfig{}, *seed, *parallel) {
			m := row.Metrics
			fmt.Printf("%-9s %5d | %8d %8d | %8.3f %8.3f | %12.2f\n",
				tc.name, row.Cap, m.MaxDensityPhys, m.MaxDensityVirt, m.Accuracy, m.Utility, row.AttackSuccess)
		}
	}

	// Malicious operator: hide the true bottleneck entirely.
	g := dui.Abilene()
	pairs := nethide.AllPairs(g)
	phys := nethide.ShortestPaths(g, pairs)
	hot, hotD := phys.MaxDensity()
	lie := dui.MaliciousTopology(g, pairs, hot.A, hot.B)
	view := nethide.Survey(lie, pairs)
	met := nethide.Evaluate(phys, view)
	atk := nethide.EvaluateAttack(phys, view, 0)
	fmt.Printf("\nmalicious operator on Abilene: hides the hottest link %s–%s (density %d)\n",
		g.Name(hot.A), g.Name(hot.B), hotD)
	fmt.Printf("  hidden link visible in any traceroute: %v\n", nethide.HiddenLinkVisible(view, hot.A, hot.B))
	fmt.Printf("  view accuracy: %.3f   utility: %.3f (the lie is unconstrained)\n", met.Accuracy, met.Utility)
	fmt.Printf("  attacker planning on the lie achieves %.0f%% of the ground-truth attack\n", 100*atk.Success)

	// Show one concrete traceroute before/after.
	src, _ := g.NodeByName("SEA")
	dst, _ := g.NodeByName("NYC")
	fmt.Printf("\ntraceroute SEA->NYC, truth: %s\n", renderPath(g, dui.Traceroute(phys, src, dst)))
	fmt.Printf("traceroute SEA->NYC, lie:   %s\n", renderPath(g, dui.Traceroute(lie, src, dst)))
}

func renderPath(g *graph.Graph, hops []graph.NodeID) string {
	s := ""
	for i, h := range hops {
		if i > 0 {
			s += " -> "
		}
		s += g.Name(h)
	}
	return s
}
