// Command benchjson converts `go test -bench` output read on stdin into
// the repository's benchmark-trajectory JSON (BENCH_2.json): one entry per
// benchmark with ns/op, B/op, allocs/op, and any custom ReportMetric
// units. Input lines are echoed to stdout so it sits transparently at the
// end of a pipe:
//
//	go test -bench=. -benchmem -count=1 . | go run ./cmd/benchjson -o BENCH_2.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"dui/internal/cli"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// File is the emitted document.
type File struct {
	GeneratedBy string      `json:"generated_by"`
	Goos        string      `json:"goos,omitempty"`
	Goarch      string      `json:"goarch,omitempty"`
	CPU         string      `json:"cpu,omitempty"`
	Benchmarks  []Benchmark `json:"benchmarks"`
}

func main() {
	out := flag.String("o", "", "write JSON here (default stdout, after the echoed input)")
	cli.Parse("benchjson")

	doc := File{GeneratedBy: "go test -bench=. -benchmem -count=1 | benchjson"}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line)
		switch {
		case strings.HasPrefix(line, "goos: "):
			doc.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			doc.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			doc.CPU = strings.TrimPrefix(line, "cpu: ")
		}
		if b, ok := parseLine(line); ok {
			doc.Benchmarks = append(doc.Benchmarks, b)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}

	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// parseLine parses one result line of the form
//
//	BenchmarkName-8   1234   456.7 ns/op   89 B/op   2 allocs/op   1.5 custom-unit
//
// i.e. the benchmark name, the iteration count, then (value, unit) pairs.
func parseLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Benchmark{}, false
	}
	name := fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i] // strip the -GOMAXPROCS suffix
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: name, Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		b.Metrics[fields[i+1]] = v
	}
	if len(b.Metrics) == 0 {
		return Benchmark{}, false
	}
	return b, true
}
