// Command pytheas-poison runs the §4.1 experiments against the
// group-based QoE optimizer: the botnet report-poisoning sweep (honest
// QoE vs botnet fraction, with and without the §5 robust-aggregation
// defense) and the MitM/operator selective-throttling stampede.
package main

import (
	"flag"
	"fmt"

	"dui"
	"dui/internal/cli"
	"dui/internal/pytheas"
)

func main() {
	var (
		sessions   = flag.Int("sessions", 1000, "group population")
		epochs     = flag.Int("epochs", 300, "simulation epochs")
		seed       = cli.Seed("")
		multiplier = flag.Int("multiplier", 5, "fake reports per bot per epoch")
	)
	cli.Parse("pytheas-poison")

	fractions := []float64{0, 0.05, 0.1, 0.15, 0.2, 0.3, 0.4, 0.5}
	base := dui.PytheasConfig{Sessions: *sessions, Epochs: *epochs, Seed: *seed}

	fmt.Printf("§4.1 Pytheas report poisoning — %d sessions, bots submit %dx report volume\n\n", *sessions, *multiplier)
	fmt.Printf("%-10s | %-28s | %-28s\n", "", "mean aggregation (default)", "defense: dedup + MAD filter")
	fmt.Printf("%-10s | %12s %14s | %12s %14s\n", "botnet f", "honest QoE", "on good opt", "honest QoE", "on good opt")

	defended := base
	defended.E2.Aggregate = pytheas.MADFiltered(3)
	defended.DedupReports = true

	vuln := dui.PoisonSweep(base, fractions, *multiplier)
	prot := dui.PoisonSweep(defended, fractions, *multiplier)
	for i := range fractions {
		fmt.Printf("%-10.2f | %12.2f %13.0f%% | %12.2f %13.0f%%\n",
			fractions[i],
			vuln[i].HonestQoELate, 100*vuln[i].GoodShareLate,
			prot[i].HonestQoELate, 100*prot[i].GoodShareLate)
	}

	fmt.Printf("\n§4.1 selective throttling (MitM/operator): coverage 70%% of sessions, severity 0.2\n")
	out := dui.RunThrottle(base, 0.7, 0.2)
	fmt.Printf("  baseline honest QoE: %.2f -> attacked: %.2f (drop %.2f)\n",
		out.Baseline.HonestQoELate, out.Attacked.HonestQoELate, out.QoEDrop)
	fmt.Printf("  peak stampede onto the capacity-limited fallback site: %.0f%% of the group\n",
		100*out.PeakStampedeShare)
	fmt.Printf("  (the group oscillates between the throttled site and the overloaded one)\n")
}
