// Command duireport runs every experiment in the reproduction at (or
// near) the paper's parameters and prints a markdown report in the shape
// of EXPERIMENTS.md: per-experiment measured numbers next to the paper's
// claims. It is the single command that regenerates the repository's
// results.
//
// The full Fig 2 run (50 trace-driven simulations of 2105 flows over
// 500 s) takes a few minutes; -quick cuts every experiment down for a
// fast smoke pass. -parallel N runs the eight report sections — and the
// seeded trials inside each — concurrently on the trial runner; the
// report text is identical at every worker count.
package main

import (
	"context"
	"flag"
	"fmt"
	"math"
	"strings"

	"dui"
	"dui/internal/blink"
	"dui/internal/cli"
	"dui/internal/conntrack"
	"dui/internal/nethide"
	"dui/internal/prof"
	"dui/internal/pytheas"
	"dui/internal/runner"
	"dui/internal/sketch"
	"dui/internal/stats"
)

func main() {
	var (
		quick    = flag.Bool("quick", false, "reduced-scale smoke run")
		seed     = cli.Seed("")
		parallel = cli.Parallel("workers for sections and trials (0 = all cores; report identical at any setting)")
	)
	cli.Parse("duireport")
	defer prof.Start()()

	fmt.Printf("# Reproduction report (seed %d, quick=%v)\n", *seed, *quick)

	sections := []func(quick bool, seed uint64, workers int) string{
		e1, e2, e3, e4, e5, e6, e7, e8,
	}
	outputs, _ := runner.Map(context.Background(), sections, *seed, runner.Config{Workers: *parallel},
		func(_ context.Context, t runner.Trial, section func(bool, uint64, int) string) (string, error) {
			return section(*quick, *seed, *parallel), nil
		})
	for _, out := range outputs {
		fmt.Print(out)
	}
}

func e1(quick bool, seed uint64, workers int) string {
	var b strings.Builder
	cfg := dui.Fig2Config{Seed: seed, Parallel: workers}
	if quick {
		cfg.Runs, cfg.Duration, cfg.LegitFlows = 4, 400, 2000
	}
	res := dui.RunFig2(cfg)
	var hits []float64
	missed := 0
	for _, h := range res.HitTimes {
		if math.IsNaN(h) {
			missed++
		} else {
			hits = append(hits, h)
		}
	}
	fmt.Fprintf(&b, "\n## E1 — Fig 2: malicious flows sampled by Blink\n")
	fmt.Fprintf(&b, "- parameters: tR=%.2fs (measured %.2fs), qm=%.4f, %d runs\n",
		res.Config.TR, res.MeasuredTR, res.Config.Qm, res.Config.Runs)
	fmt.Fprintf(&b, "- theory: E[hit 32 cells]=%.0fs (p5 %.0fs, p95 %.0fs); mean curve crosses 32 at %.0fs\n",
		res.TheoryExpectedHit, res.TheoryHitP5, res.TheoryHitP95, crossing(res.TheoryMean, 32))
	if len(hits) > 0 {
		fmt.Fprintf(&b, "- simulation: mean hit %.0fs, median %.0fs, p5 %.0fs, p95 %.0fs (%d/%d runs reached majority)\n",
			stats.Mean(hits), stats.Median(hits), stats.Quantile(hits, 0.05), stats.Quantile(hits, 0.95),
			len(hits), res.Config.Runs)
	}
	fmt.Fprintf(&b, "- end-of-run sample: sim %.1f cells, theory %.1f, finite-pool bound %.1f\n",
		last(res.SimMean), last(res.TheoryMean), blink.ExpectedCapturable(res.Config.Blink.Cells, res.Config.MalFlows()))
	fmt.Fprintf(&b, "- paper: avg 172s to majority, simulations ~200s, sample saturates high\n")
	return b.String()
}

func e2(quick bool, seed uint64, workers int) string {
	var b strings.Builder
	n, flows := 20, 500
	if quick {
		n, flows = 8, 250
	}
	prefixes := dui.SyntheticSurvey(n, seed)
	rows := dui.RunSurveyN(dui.BlinkConfig{}, prefixes, flows, seed+1, workers)
	var trs []float64
	ge10, feasible := 0, 0
	for _, r := range rows {
		trs = append(trs, r.TR)
		if r.TR >= 10 {
			ge10++
		}
		if r.RequiredQm <= 0.0525 {
			feasible++
		}
	}
	fmt.Fprintf(&b, "\n## E2 — prefix survey (tR and required qm)\n")
	fmt.Fprintf(&b, "- %d synthetic prefixes: median tR %.1fs, %d/%d with tR>=10s\n",
		n, stats.Median(trs), ge10, n)
	fmt.Fprintf(&b, "- prefixes attackable at qm<=5.25%% within one reset: %d/%d\n", feasible, n)
	fmt.Fprintf(&b, "- required qm is monotone in tR (theory property, verified in tests)\n")
	fmt.Fprintf(&b, "- paper: median tR ~5s; half of prefixes ~10s; longer tR needs higher qm\n")
	return b.String()
}

func e3(quick bool, seed uint64, workers int) string {
	var b strings.Builder
	legit := dui.RunFailover(dui.FailoverConfig{FailAt: 20, Duration: 45})
	res := dui.RunHijack(dui.HijackConfig{Seed: seed})
	fmt.Fprintf(&b, "\n## E3 — end-to-end Blink behaviour\n")
	fmt.Fprintf(&b, "- genuine failure: detected in %.2fs, %d/%d flows recovered via backup\n",
		legit.DetectionLatency, legit.RecoveredFlows, legit.Config.Flows)
	fmt.Fprintf(&b, "- hijack: attacker held %d/64 cells at trigger; reroute %.2fs after the storm; %d packets crossed the attacker router\n",
		res.MaliciousCellsAtTrigger, res.Latency, res.HijackedPackets)
	fmt.Fprintf(&b, "- paper: single-host-level attacker can induce rerouting onto a path she controls\n")
	return b.String()
}

func e4(quick bool, seed uint64, workers int) string {
	var b strings.Builder
	dur := 120.0
	flows := 10
	if quick {
		dur, flows = 60, 4
	}
	runs := dui.OscSweep([]dui.OscConfig{
		{Duration: dur, Seed: seed},
		{Duration: dur, Seed: seed, Attack: true},
		{Flows: flows, Duration: dur, Seed: seed},
		{Flows: flows, Duration: dur, Seed: seed, Attack: true},
	}, workers)
	clean, attacked, fleetC, fleetA := runs[0], runs[1], runs[2], runs[3]
	_, amp := dui.ForcedOscillation(0.01, 0.05, 10)
	fmt.Fprintf(&b, "\n## E4 — PCC utility equalizer\n")
	fmt.Fprintf(&b, "- single flow: clean %.0f pkts/s vs attacked %.0f pkts/s (capacity 1000); oscillation %.1f%%; drop budget %.2f%%\n",
		clean.MeanRateLate, attacked.MeanRateLate, 100*attacked.Flows[0].OscAmplitude, 100*attacked.DropFraction)
	fmt.Fprintf(&b, "- fleet of %d flows: aggregate %.0f -> %.0f pkts/s; arrival CV %.2f%% -> %.2f%%\n",
		flows, lateMean(fleetC.AggSeries, dur*2/3), lateMean(fleetA.AggSeries, dur*2/3),
		100*fleetC.AggCV, 100*fleetA.AggCV)
	fmt.Fprintf(&b, "- analytic model: tied trials escalate ε to the 5%% cap -> ±5%% forced oscillation (peak-to-peak %.0f%%)\n", 100*amp)
	fmt.Fprintf(&b, "- paper: flows fluctuate ±5%% without converging; fleet-level traffic fluctuation at the destination\n")
	return b.String()
}

func e5(quick bool, seed uint64, workers int) string {
	var b strings.Builder
	cfg := dui.PytheasConfig{Seed: seed}
	if quick {
		cfg.Sessions, cfg.Epochs = 500, 150
	}
	fractions := []float64{0, 0.1, 0.2, 0.3}
	rows := dui.PoisonSweepN(cfg, fractions, 5, workers)
	fmt.Fprintf(&b, "\n## E5 — Pytheas group poisoning\n")
	for i, f := range fractions {
		fmt.Fprintf(&b, "- botnet %.0f%%: honest QoE %.2f, %.0f%% of honest sessions still on the good option\n",
			100*f, rows[i].HonestQoELate, 100*rows[i].GoodShareLate)
	}
	out := dui.RunThrottle(cfg, 0.7, 0.2)
	fmt.Fprintf(&b, "- throttle attack: QoE %.2f -> %.2f, peak stampede %.0f%% onto the capacity-limited site\n",
		out.Baseline.HonestQoELate, out.Attacked.HonestQoELate, 100*out.PeakStampedeShare)
	fmt.Fprintf(&b, "- paper: a minority of manipulated clients drives group-wide decisions; throttling stampedes/overloads a CDN site\n")
	return b.String()
}

func e6(quick bool, seed uint64, workers int) string {
	var b strings.Builder
	g := dui.Abilene()
	pairs := nethide.AllPairs(g)
	phys := nethide.ShortestPaths(g, pairs)
	hot, hotD := phys.MaxDensity()
	virt, m := dui.Obfuscate(g, pairs, dui.NetHideConfig{DensityCap: 30}, seed)
	atk := nethide.EvaluateAttack(phys, nethide.Survey(virt, pairs), 0)
	lie := dui.MaliciousTopology(g, pairs, hot.A, hot.B)
	view := nethide.Survey(lie, pairs)
	lieAtk := nethide.EvaluateAttack(phys, view, 0)
	fmt.Fprintf(&b, "\n## E6 — NetHide / fake topologies\n")
	fmt.Fprintf(&b, "- Abilene: hottest link %s-%s density %d; NetHide cap 30 -> virt max %d, accuracy %.3f, utility %.3f, attack success %.2f\n",
		g.Name(hot.A), g.Name(hot.B), hotD, m.MaxDensityVirt, m.Accuracy, m.Utility, atk.Success)
	fmt.Fprintf(&b, "- malicious operator: hidden link visible=%v; attacker success on the lie %.2f\n",
		nethide.HiddenLinkVisible(view, hot.A, hot.B), lieAtk.Success)
	fmt.Fprintf(&b, "- paper: unauthenticated ICMP lets whoever answers traceroute control the learned topology\n")
	return b.String()
}

func e7(quick bool, seed uint64, workers int) string {
	var b strings.Builder
	sp := dui.RunSPPIFO(8, seed)
	rows := dui.RunSketchPollution(seed, []int{400})
	var crafted, random sketch.PollutionRow
	for _, r := range rows {
		if r.Crafted {
			crafted = r
		} else {
			random = r
		}
	}
	vic, others := sketch.PollutionExperiment{Seed: seed}.RunTargeted(400, 2)
	probe := dui.RunProbeAttack(8, seed, 0.2)
	fmt.Fprintf(&b, "\n## E7 — §3.2 breadth\n")
	fmt.Fprintf(&b, "- SP-PIFO (8 queues): adversarial ranks amplify excess unpifoness %.1fx over random arrivals\n", sp.Amplification)
	fmt.Fprintf(&b, "- FlowRadar: 400 crafted flows -> %.0f%% of attack traffic invisible (random: %.0f%% decoded); targeted victim hidden=%v with %.0f%% collateral-free legit decode\n",
		100*(1-crafted.AttackDecoded), 100*random.AttackDecoded, !vic, 100*others)
	fmt.Fprintf(&b, "- RON: +200ms on probes only diverts the victim pair (latency x%.2f) touching %.2f%% of packets\n",
		probe.Inflation, 100*probe.TamperBudget)
	misblame := dui.RunDapper(dui.TrueSender, dui.InjectRetransmissions, 20)
	fmt.Fprintf(&b, "- DAPPER: duplicated segments flip a sender-limited flow's diagnosis to %s (%d injected packets)\n",
		misblame.Diagnosis, misblame.Budget)
	exh := dui.RunStateExhaustion(conntrack.ExhaustionConfig{Seed: seed, AttackSYNRate: 2000})
	fmt.Fprintf(&b, "- state exhaustion: 2000 SYN/s fills the 4000-entry table; %.0f%% of legit connections break at the next pool update\n",
		100*exh.BrokenFraction)
	acc, evRows := dui.RunBNNEvasion(seed|1, []int{4})
	for _, r := range evRows {
		if r.Crafted {
			fmt.Fprintf(&b, "- in-network BNN (%.0f%% accurate): %.0f%% evasion with %.1f crafted bit flips on average\n",
				100*acc, 100*r.SuccessRate, r.MeanFlips)
		}
	}
	return b.String()
}

func e8(quick bool, seed uint64, workers int) string {
	var b strings.Builder
	clean := dui.RunFailover(dui.FailoverConfig{FailAt: 0, Duration: 20})
	model := dui.NewRTOModel(clean.SRTTs, 0.2)
	hook := func(p *blink.Pipeline) { dui.GuardPipeline(p, model) }
	genuine := dui.RunFailover(dui.FailoverConfig{FailAt: 20, Duration: 45, Hook: hook})
	attack := dui.RunHijack(dui.HijackConfig{Seed: seed, Hook: hook})
	base := dui.PytheasConfig{Seed: seed}
	atk := pytheas.Poison{Bots: 150, ReportMultiplier: 5}.Defaults()
	vuln := dui.RunPytheas(base, atk)
	defended := base
	defended.E2.Aggregate = pytheas.MADFiltered(3)
	defended.DedupReports = true
	prot := dui.RunPytheas(defended, atk)
	att := dui.RunOscillation(dui.OscConfig{Duration: 90, Seed: seed, Attack: true})
	fmt.Fprintf(&b, "\n## E8 — §5 countermeasures\n")
	fmt.Fprintf(&b, "- Blink guard: genuine failover still works (rerouted=%v, latency %.2fs, 0 vetoes=%v); hijack blocked (rerouted=%v, %d vetoes)\n",
		genuine.Rerouted, genuine.DetectionLatency, genuine.VetoedReroutes == 0, attack.Rerouted, attack.VetoedReroutes)
	fmt.Fprintf(&b, "- Pytheas: attacked QoE %.2f -> defended %.2f (dedup + MAD filtering)\n",
		vuln.HonestQoELate, prot.HonestQoELate)
	fmt.Fprintf(&b, "- PCC: equalizer detected: %s\n", dui.PCCLossCorrelation(att.Records))
	for _, cap := range []float64{0.05, 0.01} {
		_, amp := dui.ForcedOscillation(0.01, cap, 20)
		fmt.Fprintf(&b, "- PCC ε clamp %.2f bounds forced oscillation to ±%.0f%%\n", cap, 100*amp/2)
	}
	return b.String()
}

func crossing(s *stats.Series, level float64) float64 {
	t, _ := s.FirstCrossing(level)
	return t
}

func last(s *stats.Series) float64 { return s.Values[len(s.Values)-1] }

func lateMean(s *stats.Series, from float64) float64 {
	var sum stats.Summary
	for i := range s.Values {
		if s.Time(i) >= from {
			sum.Add(s.Values[i])
		}
	}
	return sum.Mean()
}
