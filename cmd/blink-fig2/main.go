// Command blink-fig2 reproduces Fig 2 of the paper: the number of
// malicious flows in Blink's per-prefix sample over time — the §3.1
// theoretical model (mean and 5th/95th-percentile envelopes) overlaid
// with trace-driven simulations of the full flow-selector pipeline.
//
// With -csv it emits the plottable series; otherwise it prints the
// summary the figure's caption quotes (time until the sample majority is
// malicious).
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"dui"
	"dui/internal/audit"
	"dui/internal/blink"
	"dui/internal/cli"
	"dui/internal/prof"
	"dui/internal/runner"
	"dui/internal/stats"
)

func main() {
	var (
		runs     = flag.Int("runs", 50, "number of trace-driven simulations")
		duration = flag.Float64("duration", 500, "horizon in seconds")
		tr       = flag.Float64("tr", 8.37, "target mean sampled residence tR (s)")
		qm       = flag.Float64("qm", 0.0525, "malicious traffic fraction")
		flows    = flag.Int("flows", 2000, "legitimate flow population")
		seed     = cli.Seed("")
		meanDur  = flag.Float64("meandur", 0, "legit mean flow duration (0 = calibrate to tR)")
		csv      = flag.Bool("csv", false, "emit plottable CSV instead of the summary")
		parallel = cli.Parallel("")
		progress = flag.Bool("progress", false, "report per-trial progress on stderr")
		trace    = cli.Trace("write the per-trial selector event trace (JSONL) to this file; diff two runs with cmd/simtrace")
		audited  = cli.Audit("check selector invariants on every trial (defaults to DUI_AUDIT)")
	)
	cli.Parse("blink-fig2")
	defer prof.Start()()

	cfgIn := dui.Fig2Config{
		Runs: *runs, Duration: *duration, TR: *tr, Qm: *qm,
		LegitFlows: *flows, Seed: *seed, MeanFlowDuration: *meanDur,
		Parallel: *parallel,
	}
	var (
		recs []*audit.Recorder
		auds []*audit.MonAudit
	)
	if *trace != "" || *audited {
		n := cfgIn.Defaults().Runs
		recs = make([]*audit.Recorder, n)
		auds = make([]*audit.MonAudit, n)
		cfgIn.ObserveTrial = func(run int, m *blink.Monitor) {
			var rec *audit.Recorder
			if *trace != "" {
				rec = audit.NewRecorder()
				recs[run] = rec
			}
			auds[run] = audit.AttachMonitor(m, rec)
		}
	}
	if *progress {
		cfgIn.OnProgress = func(p runner.Progress) {
			fmt.Fprintf(os.Stderr, "\rtrial %d/%d (%.1fs wall, %.0fs simulated)",
				p.Done, p.Total, p.Elapsed.Seconds(), p.VirtualSeconds)
			if p.Done == p.Total {
				fmt.Fprintln(os.Stderr)
			}
		}
	}
	res := dui.RunFig2(cfgIn)

	if *audited {
		for run, a := range auds {
			if a == nil {
				continue
			}
			if err := a.Check(res.Config.Duration); err != nil {
				fmt.Fprintf(os.Stderr, "blink-fig2: audit: run %d: %v\n", run, err)
				os.Exit(1)
			}
		}
		fmt.Fprintf(os.Stderr, "blink-fig2: audit: selector invariants hold for all %d runs\n", len(auds))
	}
	if *trace != "" {
		f, err := os.Create(*trace)
		if err != nil {
			fmt.Fprintf(os.Stderr, "blink-fig2: %v\n", err)
			os.Exit(1)
		}
		events := audit.Flatten(recs)
		if err := audit.WriteJSONL(f, events); err != nil {
			fmt.Fprintf(os.Stderr, "blink-fig2: %v\n", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "blink-fig2: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "blink-fig2: wrote %d trace events to %s\n", len(events), *trace)
	}

	if *csv {
		names := []string{"theory_mean", "theory_p5", "theory_p95", "sim_mean", "sim_p5", "sim_p95"}
		series := []*stats.Series{res.TheoryMean, res.TheoryP5, res.TheoryP95, res.SimMean, res.SimP5, res.SimP95}
		for i, r := range res.Runs {
			names = append(names, fmt.Sprintf("run%02d", i))
			series = append(series, r)
		}
		fmt.Print(stats.CSV(names, series))
		return
	}

	cfg := res.Config
	fmt.Printf("Fig 2 reproduction — malicious flows sampled by Blink over time\n")
	fmt.Printf("parameters: tR=%.2fs qm=%.4f (%d legit + %d malicious flows), %d cells, threshold %d, %d runs\n",
		cfg.TR, cfg.Qm, cfg.LegitFlows, cfg.MalFlows(), cfg.Blink.Cells, cfg.Blink.Threshold, cfg.Runs)
	fmt.Printf("calibration: legit mean flow duration %.2fs -> measured tR %.2fs\n\n",
		res.MeanFlowDuration, res.MeasuredTR)

	fmt.Printf("theory (binomial model of §3.1):\n")
	fmt.Printf("  expected majority hitting time: %.0f s (5th pct %.0f s, 95th pct %.0f s)\n",
		res.TheoryExpectedHit, res.TheoryHitP5, res.TheoryHitP95)
	mc, _ := res.TheoryMean.FirstCrossing(float64(cfg.Blink.Threshold))
	fmt.Printf("  mean curve crosses %d cells at:  %.0f s\n", cfg.Blink.Threshold, mc)

	var hits []float64
	missed := 0
	for _, h := range res.HitTimes {
		if math.IsNaN(h) {
			missed++
		} else {
			hits = append(hits, h)
		}
	}
	fmt.Printf("\nsimulations (%d runs, %d reached the majority):\n", cfg.Runs, len(hits))
	if len(hits) > 0 {
		fmt.Printf("  mean hitting time: %.0f s   median: %.0f s   p5: %.0f s   p95: %.0f s\n",
			stats.Mean(hits), stats.Median(hits), stats.Quantile(hits, 0.05), stats.Quantile(hits, 0.95))
	}
	if missed > 0 {
		fmt.Printf("  %d runs never reached the majority within %.0f s\n", missed, cfg.Duration)
	}
	fmt.Printf("  sample end level: sim mean %.1f cells (theory %.1f, finite-pool bound %.1f)\n",
		res.SimMean.Values[len(res.SimMean.Values)-1],
		res.TheoryMean.Values[len(res.TheoryMean.Values)-1],
		capturable(cfg))
	fmt.Printf("\npaper: \"on average, it takes 172 s until the sample contains enough (i.e., 32) malicious flows\";\n")
	fmt.Printf("       simulations cross ~200 s. See EXPERIMENTS.md for the comparison discussion.\n")
}

func capturable(cfg dui.Fig2Config) float64 {
	n := cfg.Blink.Cells
	m := cfg.MalFlows()
	return float64(n) * (1 - math.Pow(1-1/float64(n), float64(m)))
}
