// Command pcc-oscillate runs the §4.2 experiment: PCC Allegro flows with
// and without the MitM utility equalizer. Clean flows climb to the
// bottleneck capacity; attacked flows stay pinned near their start rate,
// endlessly re-running inconclusive or punished experiments, at a drop
// budget of well under a percent of packets. With many flows toward one
// destination the aggregate arrival rate is depressed and destabilized.
package main

import (
	"flag"
	"fmt"

	"dui"
	"dui/internal/cli"
)

func main() {
	var (
		flows    = flag.Int("flows", 1, "concurrent PCC flows to one destination")
		duration = flag.Float64("duration", 120, "horizon (s)")
		seed     = cli.Seed("")
		capacity = flag.Float64("capacity", 1000, "per-flow bottleneck capacity (pkts/s)")
		miTrace  = flag.Bool("mitrace", false, "dump flow 0's monitor-interval records")
	)
	cli.Parse("pcc-oscillate")

	clean := dui.RunOscillation(dui.OscConfig{
		Flows: *flows, Duration: *duration, Seed: *seed, CapacityPPS: *capacity,
	})
	attacked := dui.RunOscillation(dui.OscConfig{
		Flows: *flows, Duration: *duration, Seed: *seed, CapacityPPS: *capacity, Attack: true,
	})

	fmt.Printf("§4.2 PCC under the utility equalizer — %d flow(s), capacity %.0f pkts/s\n\n", *flows, *capacity)
	fmt.Printf("%-22s %14s %14s\n", "", "clean", "attacked")
	fmt.Printf("%-22s %12.0f %14.0f   pkts/s (late mean base rate)\n", "rate", clean.MeanRateLate, attacked.MeanRateLate)
	fmt.Printf("%-22s %13.1f%% %13.1f%%  (peak-to-peak / mean, late)\n", "rate oscillation",
		100*clean.Flows[0].OscAmplitude, 100*attacked.Flows[0].OscAmplitude)
	fmt.Printf("%-22s %13.2f%% %13.2f%%\n", "aggregate arrival CV", 100*clean.AggCV, 100*attacked.AggCV)
	fmt.Printf("%-22s %14s %13.2f%%  of packets dropped by the MitM\n", "attack budget", "-", 100*attacked.DropFraction)

	_, amp := dui.ForcedOscillation(0.01, 0.05, 10)
	fmt.Printf("\nanalytic §4.2 model: with every trial tied, ε escalates 0.01→0.05 and the rate\n")
	fmt.Printf("fluctuates ±5%% forever (peak-to-peak %.0f%% of base) without converging.\n", 100*amp)

	if *miTrace {
		fmt.Printf("\nflow 0 monitor intervals (attacked):\n")
		for _, r := range attacked.Records {
			fmt.Printf("  t=%6.1f rate=%7.1f role=%-7s loss=%.3f u=%9.2f eps=%.2f state=%s\n",
				r.Start, r.Rate, r.Role, r.Loss, r.Utility, r.Eps, r.State)
		}
	}
}
