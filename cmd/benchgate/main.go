// Command benchgate compares a benchmark-trajectory JSON file (the
// cmd/benchjson output format) against the checked-in floors in
// BENCH_FLOOR.json and reports every violation: an absolute metric floor
// or ceiling ("the wheel engine must sustain N events/sec", "the hot path
// must stay at 0 allocs/op") or a ratio floor between two benchmarks
// ("wheel must beat heap by at least R× on the E1 workload").
//
// Usage:
//
//	benchgate [-floor BENCH_FLOOR.json] [-strict] [-strict-allocs] BENCH.json
//
// By default violations are printed as warnings and the exit status is 0
// — shared CI runners are too noisy for wall-clock numbers to be a hard
// gate, so the job surfaces regressions without blocking merges. With
// -strict any violation exits 1. With -strict-allocs only the allocs/op
// ceilings become hard failures: allocation counts are scheduling-
// independent (unlike wall-clock throughput), so "an allocation
// reappeared on the steady-state path" gates reliably even on noisy
// shared runners while the perf floors stay warn-only. Exit status 2 on
// usage or read errors, including a floor entry whose benchmark or metric
// is missing from the measurement file (a silently-skipped check would
// read as a pass).
//
// The floors are deliberately conservative relative to the numbers in
// BENCH_4.json: they are meant to catch "the optimization fell off" (a
// 2×-or-worse cliff, an allocation reappearing on the steady-state path),
// not a 10% wobble.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"dui/internal/cli"
)

// Benchmark mirrors cmd/benchjson's entry: one parsed result line.
type Benchmark struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// File mirrors cmd/benchjson's document.
type File struct {
	GeneratedBy string      `json:"generated_by"`
	Goos        string      `json:"goos,omitempty"`
	Goarch      string      `json:"goarch,omitempty"`
	CPU         string      `json:"cpu,omitempty"`
	Benchmarks  []Benchmark `json:"benchmarks"`
}

// Floor is one absolute bound on a single benchmark metric. Min and Max
// are pointers so a zero bound (allocs/op <= 0) is expressible.
type Floor struct {
	Bench  string   `json:"bench"`
	Metric string   `json:"metric"`
	Min    *float64 `json:"min,omitempty"`
	Max    *float64 `json:"max,omitempty"`
	Why    string   `json:"why,omitempty"`
}

// Ratio is a floor on Num's metric divided by Den's metric — the shape of
// the PR's "≥5× events/sec over the heap engine" acceptance criterion,
// held here at a CI-noise-tolerant fraction of the measured value.
type Ratio struct {
	Num    string  `json:"num"`
	Den    string  `json:"den"`
	Metric string  `json:"metric"`
	Min    float64 `json:"min"`
	Why    string  `json:"why,omitempty"`
}

// FloorFile is the checked-in BENCH_FLOOR.json document.
type FloorFile struct {
	Comment string  `json:"comment,omitempty"`
	Floors  []Floor `json:"floors"`
	Ratios  []Ratio `json:"ratios"`
}

func main() {
	floorPath := flag.String("floor", "BENCH_FLOOR.json", "floor file to compare against")
	strict := flag.Bool("strict", false, "exit 1 on any violation instead of warning")
	strictAllocs := flag.Bool("strict-allocs", false, "exit 1 on allocs/op ceiling violations (deterministic metric); perf floors stay warnings")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: benchgate [-floor BENCH_FLOOR.json] [-strict] [-strict-allocs] BENCH.json\n")
		flag.PrintDefaults()
	}
	cli.Parse("benchgate")
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}

	var floors FloorFile
	mustLoad(*floorPath, &floors)
	var bench File
	mustLoad(flag.Arg(0), &bench)

	byName := make(map[string]Benchmark, len(bench.Benchmarks))
	for _, b := range bench.Benchmarks {
		byName[b.Name] = b
	}
	metric := func(name, unit string) float64 {
		b, ok := byName[name]
		if !ok {
			fatalf("benchmark %q not present in %s (floor entry is stale or the bench run was filtered)", name, flag.Arg(0))
		}
		v, ok := b.Metrics[unit]
		if !ok {
			fatalf("benchmark %q has no %q metric in %s", name, unit, flag.Arg(0))
		}
		return v
	}

	violations, hard := 0, 0
	warn := func(format string, args ...any) {
		violations++
		fmt.Printf("benchgate: FAIL: "+format+"\n", args...)
	}

	for _, f := range floors.Floors {
		v := metric(f.Bench, f.Metric)
		switch {
		case f.Min != nil && v < *f.Min:
			warn("%s %s = %g, below floor %g%s", f.Bench, f.Metric, v, *f.Min, why(f.Why))
		case f.Max != nil && v > *f.Max:
			warn("%s %s = %g, above ceiling %g%s", f.Bench, f.Metric, v, *f.Max, why(f.Why))
			if *strictAllocs && f.Metric == "allocs/op" {
				hard++
			}
		default:
			fmt.Printf("benchgate: ok: %s %s = %g\n", f.Bench, f.Metric, v)
		}
	}
	for _, r := range floors.Ratios {
		num, den := metric(r.Num, r.Metric), metric(r.Den, r.Metric)
		if den == 0 {
			fatalf("ratio %s / %s: denominator %s is zero", r.Num, r.Den, r.Metric)
		}
		got := num / den
		if got < r.Min {
			warn("%s / %s %s ratio = %.2f, below floor %.2f%s", r.Num, r.Den, r.Metric, got, r.Min, why(r.Why))
		} else {
			fmt.Printf("benchgate: ok: %s / %s %s ratio = %.2f (floor %.2f)\n", r.Num, r.Den, r.Metric, got, r.Min)
		}
	}

	if violations > 0 {
		fmt.Printf("benchgate: %d floor violation(s) — see FAIL lines above\n", violations)
		if *strict {
			os.Exit(1)
		}
		if hard > 0 {
			fmt.Printf("benchgate: %d allocs/op ceiling violation(s) are hard failures under -strict-allocs\n", hard)
			os.Exit(1)
		}
		fmt.Println("benchgate: warn-only mode, exiting 0 (rerun with -strict to gate)")
		return
	}
	fmt.Println("benchgate: all floors hold")
}

// why formats an optional rationale suffix.
func why(s string) string {
	if s == "" {
		return ""
	}
	return " (" + s + ")"
}

func mustLoad(path string, v any) {
	data, err := os.ReadFile(path)
	if err != nil {
		fatalf("%v", err)
	}
	if err := json.Unmarshal(data, v); err != nil {
		fatalf("%s: %v", path, err)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchgate: "+format+"\n", args...)
	os.Exit(2)
}
