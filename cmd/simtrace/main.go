// Command simtrace diffs two event traces recorded by the internal/audit
// layer (e.g. `blink-fig2 -trace a.jsonl`) and reports the FIRST diverging
// event, with surrounding context from both traces — turning a whole-file
// "bytes differ" bit-identity check into a localized answer: which run,
// which virtual time, which cell or link, which flow.
//
// Usage:
//
//	simtrace [-context N] [-quiet] A.jsonl B.jsonl
//
// Exit status 0 when the traces are identical, 1 on divergence, 2 on
// usage or read errors. With -quiet nothing is printed on stdout and the
// exit status alone carries the verdict — for use in scripts and CI steps
// that only branch on it.
package main

import (
	"flag"
	"fmt"
	"os"

	"dui/internal/audit"
	"dui/internal/cli"
)

func main() {
	ctxN := flag.Int("context", 3, "events of context to print around the divergence")
	quiet := flag.Bool("quiet", false, "print nothing; report the verdict via the exit status only")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: simtrace [-context N] [-quiet] A.jsonl B.jsonl\n")
		flag.PrintDefaults()
	}
	cli.Parse("simtrace")
	if flag.NArg() != 2 {
		flag.Usage()
		os.Exit(2)
	}
	a := mustRead(flag.Arg(0))
	b := mustRead(flag.Arg(1))

	idx, diverged := audit.Diff(a, b)
	if !diverged {
		if !*quiet {
			fmt.Printf("identical: %d events\n", len(a))
		}
		return
	}
	if *quiet {
		os.Exit(1)
	}
	fmt.Printf("traces diverge at event #%d (%s: %d events, %s: %d events)\n\n",
		idx, flag.Arg(0), len(a), flag.Arg(1), len(b))
	printSide(flag.Arg(0), a, idx, *ctxN)
	fmt.Println()
	printSide(flag.Arg(1), b, idx, *ctxN)
	os.Exit(1)
}

func mustRead(path string) []audit.Event {
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "simtrace: %v\n", err)
		os.Exit(2)
	}
	defer f.Close()
	evs, err := audit.ReadJSONL(f)
	if err != nil {
		fmt.Fprintf(os.Stderr, "simtrace: %s: %v\n", path, err)
		os.Exit(2)
	}
	return evs
}

// printSide shows the events around idx in one trace, marking the
// diverging one.
func printSide(name string, evs []audit.Event, idx, ctxN int) {
	fmt.Printf("%s:\n", name)
	lo := idx - ctxN
	if lo < 0 {
		lo = 0
	}
	hi := idx + ctxN + 1
	if hi > len(evs) {
		hi = len(evs)
	}
	for i := lo; i < hi; i++ {
		marker := "  "
		if i == idx {
			marker = "> "
		}
		fmt.Printf("  %s%s\n", marker, evs[i])
	}
	if idx >= len(evs) {
		fmt.Printf("  > (no event #%d: trace ended)\n", idx)
	}
}
