// Command dataplane-attacks runs the §3.2 breadth experiments: the
// SP-PIFO adversarial rank sequence, the FlowRadar/Bloom pollution
// attacks, and the RON probe-manipulation attack.
package main

import (
	"fmt"

	"dui"
	"dui/internal/cli"
	"dui/internal/conntrack"
	"dui/internal/ron"
	"dui/internal/sketch"
	"dui/internal/sppifo"
	"dui/internal/stats"
)

func main() {
	var seed = cli.Seed("")
	cli.Parse("dataplane-attacks")

	fmt.Printf("§3.2 breadth attacks\n")

	// SP-PIFO: adversarial rank sequences vs the random-arrival design
	// assumption, across queue counts (the ablation DESIGN.md calls out).
	fmt.Printf("\n[SP-PIFO] excess unpifoness over an ideal PIFO (same arrivals)\n")
	fmt.Printf("%-8s %14s %14s %14s %12s\n", "queues", "random ranks", "adversarial", "amplification", "victim delay")
	for _, k := range []int{2, 4, 8, 16, 32} {
		out := dui.RunSPPIFO(k, *seed)
		fmt.Printf("%-8d %14d %14d %13.1fx %9.1f pkt\n",
			k, out.RandomExcess, out.AdversarialExcess, out.Amplification, out.Adversarial.VictimDelay)
	}
	_ = sppifo.Sawtooth // alternative pattern available in the package

	// FlowRadar pollution.
	fmt.Printf("\n[FlowRadar] crafted vs random extra flows (4096 cells, k=3, 1500 legit flows)\n")
	fmt.Printf("%-14s %10s | %14s %14s %10s\n", "attack flows", "crafted", "legit decoded", "attack decoded", "residue")
	rows := dui.RunSketchPollution(*seed, []int{200, 400, 800, 3000})
	for _, r := range rows {
		fmt.Printf("%-14d %10v | %13.1f%% %13.1f%% %10d\n",
			r.AttackFlows, r.Crafted, 100*r.LegitDecoded, 100*r.AttackDecoded, r.Residue)
	}
	vic, others := sketch.PollutionExperiment{Seed: *seed}.RunTargeted(400, 2)
	fmt.Printf("targeted hiding: victim flow decoded=%v, other legit flows decoded=%.1f%%\n", vic, 100*others)

	rng := stats.NewRNG(*seed)
	randomN := sketch.SaturationInsertions(4096, 3, 0.5, false, rng.Child())
	craftedN := sketch.SaturationInsertions(4096, 3, 0.5, true, rng.Child())
	fmt.Printf("bloom saturation to 50%% FPR: crafted %d insertions vs random %d (%.1fx advantage)\n",
		craftedN, randomN, float64(randomN)/float64(craftedN))

	// RON probe manipulation.
	fmt.Printf("\n[RON] probe-only tampering on an 8-node overlay, victim pair (0,1)\n")
	delay := dui.RunProbeAttack(8, *seed, 0.2)
	fmt.Printf("  delay probes +200ms: diverted=%v, data latency %.1fms -> %.1fms (x%.2f), budget %.2f%% of packets\n",
		delay.Diverted, 1000*delay.CleanLatency, 1000*delay.AttackedLatency, delay.Inflation, 100*delay.TamperBudget)
	drop := ron.RunProbeAttack(8, *seed, func(o *ron.Overlay) (ron.ProbeTamper, int) {
		return ron.DropProbes(0, 1), -1
	}, 0, 1)
	fmt.Printf("  drop probes (fake dead path): diverted=%v, data latency x%.2f\n", drop.Diverted, drop.Inflation)
	steer := ron.RunProbeAttack(8, *seed, func(o *ron.Overlay) (ron.ProbeTamper, int) {
		return ron.SteerVia(0, 1, 5, 0.2), 5
	}, 0, 1)
	fmt.Printf("  steer via attacker node 5: routed through it=%v (privacy: attacker now on-path)\n", steer.ViaAttacker)

	// DAPPER diagnosis mis-blaming.
	fmt.Printf("\n[DAPPER] TCP diagnosis confusion matrix (rows: ground truth; columns: attack)\n")
	fmt.Printf("%-10s | %-16s %-22s %-16s %-16s\n", "truth", "none", "inject-retrans", "shrink-window", "inflate-window")
	matrix := dui.DapperConfusionMatrix(25)
	byKey := map[[2]string]string{}
	for _, o := range matrix {
		byKey[[2]string{o.Scenario.String(), o.Attack.String()}] = o.Diagnosis.String()
	}
	for _, sc := range []string{"network", "receiver", "sender"} {
		fmt.Printf("%-10s | %-16s %-22s %-16s %-16s\n", sc,
			byKey[[2]string{sc, "none"}], byKey[[2]string{sc, "inject-retransmissions"}],
			byKey[[2]string{sc, "shrink-window"}], byKey[[2]string{sc, "inflate-window"}])
	}

	// SilkRoad-style state exhaustion.
	fmt.Printf("\n[per-connection state] 4000-entry table, 1000 legit connections, pool update at t=30s\n")
	fmt.Printf("%-14s %14s %14s %14s\n", "SYN flood/s", "occupancy", "broken legit", "rejected")
	for _, rate := range []float64{0, 900, 2000, 4000} {
		res := dui.RunStateExhaustion(conntrack.ExhaustionConfig{Seed: *seed, AttackSYNRate: rate})
		fmt.Printf("%-14.0f %14d %13.0f%% %14d\n", rate, res.TableOccupancy, 100*res.BrokenFraction, res.Rejected)
	}

	// In-network BNN adversarial examples.
	fmt.Printf("\n[in-network BNN] adversarial header-bit flips vs the line-rate classifier\n")
	acc, rows2 := dui.RunBNNEvasion(*seed|1, []int{1, 2, 4, 6})
	fmt.Printf("student accuracy vs ground truth: %.1f%%\n", 100*acc)
	fmt.Printf("%-8s | %-10s %14s %12s\n", "budget", "crafted", "evasion rate", "mean flips")
	for _, r := range rows2 {
		fmt.Printf("%-8d | %-10v %13.0f%% %12.1f\n", r.Budget, r.Crafted, 100*r.SuccessRate, r.MeanFlips)
	}
}
