// Command blink-hijack runs the §3.1 attack end to end on the network
// simulator: host-level attackers keep always-active flows toward a
// victim prefix until they dominate Blink's sample, then fake a
// retransmission storm; Blink infers a failure of the healthy primary
// path and reroutes the prefix onto a path the attacker controls.
//
// -defended installs the §5 RTO-plausibility supervisor first, and
// -legit runs Blink's intended function instead (a real failure with real
// TCP flows) to show the baseline the attack subverts.
package main

import (
	"flag"
	"fmt"

	"dui"
	"dui/internal/blink"
	"dui/internal/cli"
)

func main() {
	var (
		seed     = cli.Seed("")
		trigger  = flag.Float64("trigger", 150, "attack trigger time (s)")
		duration = flag.Float64("duration", 200, "horizon (s)")
		mal      = flag.Int("malflows", 80, "attacker flow pool")
		legit    = flag.Int("legitflows", 400, "legitimate flow population")
		defended = flag.Bool("defended", false, "install the §5 RTO-plausibility supervisor")
		legitRun = flag.Bool("legit", false, "run a genuine failure instead of the attack")
		runs     = flag.Int("runs", 1, "independent seeded trials (>1 prints ensemble statistics)")
		parallel = cli.Parallel("")
	)
	cli.Parse("blink-hijack")

	if *legitRun {
		res := dui.RunFailover(dui.FailoverConfig{FailAt: 20, Duration: 45})
		fmt.Printf("Blink legitimate operation — real failure at t=%.0fs\n", res.FailureAt)
		fmt.Printf("  rerouted: %v at t=%.2fs (detection latency %.2fs)\n",
			res.Rerouted, res.RerouteTime, res.DetectionLatency)
		fmt.Printf("  flows recovered after failover: %d/%d\n", res.RecoveredFlows, res.Config.Flows)
		fmt.Printf("  retransmission gaps observed: %d (RTO-shaped; supervisor training signal)\n", len(res.RetransGaps))
		return
	}

	cfg := dui.HijackConfig{
		Seed: *seed, TriggerAt: *trigger, Duration: *duration,
		MalFlows: *mal, LegitFlows: *legit,
	}
	if *defended {
		clean := dui.RunFailover(dui.FailoverConfig{FailAt: 0, Duration: 20})
		model := dui.NewRTOModel(clean.SRTTs, 0.2)
		cfg.Hook = func(p *blink.Pipeline) { dui.GuardPipeline(p, model) }
	}

	if *runs > 1 {
		ens := dui.SummarizeHijacks(dui.HijackTrials(cfg, *runs, *parallel))
		fmt.Printf("§3.1 Blink traffic hijack — %d seeded trials (qm=%.2f, trigger at %.0fs, defended=%v)\n",
			ens.Trials, float64(*mal)/float64(*legit), *trigger, *defended)
		fmt.Printf("  attack succeeded (reroute onto attacker path): %d/%d trials\n", ens.Rerouted, ens.Trials)
		fmt.Printf("  attacker-held cells at trigger: %.1f mean\n", ens.CellsMean)
		if ens.Rerouted > 0 {
			fmt.Printf("  reroute latency after the storm: mean %.2fs, p95 %.2fs\n", ens.LatencyMean, ens.LatencyP95)
		}
		fmt.Printf("  victim packets through the attacker across all trials: %d\n", ens.HijackedPackets)
		return
	}

	res := dui.RunHijack(cfg)

	fmt.Printf("§3.1 Blink traffic hijack (qm=%.2f, trigger at %.0fs, defended=%v)\n",
		float64(res.Config.MalFlows)/float64(res.Config.LegitFlows), *trigger, *defended)
	fmt.Printf("  malicious cells at trigger: %d/%d (threshold %d)\n",
		res.MaliciousCellsAtTrigger, res.Config.Blink.Cells, res.Config.Blink.Threshold)
	if res.Rerouted {
		fmt.Printf("  HIJACKED: reroute at t=%.2fs (%.2fs after the storm started)\n", res.RerouteTime, res.Latency)
		fmt.Printf("  victim traffic through the attacker's router: %d packets\n", res.HijackedPackets)
	} else {
		fmt.Printf("  no reroute (attack failed or was blocked)\n")
	}
	if res.VetoedReroutes > 0 {
		fmt.Printf("  supervisor vetoed %d reroute attempt(s): retransmission timing did not match the RTO model\n",
			res.VetoedReroutes)
	}
}
