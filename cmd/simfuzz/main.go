// Command simfuzz runs the property-based fuzzing campaign over random
// simulation scenarios (internal/fuzz): each seed becomes a randomized
// topology with heterogeneous links, heavy-tailed workloads, scheduled
// failures, MitM taps, and optional Blink deployments, executed twice
// under the full audit-oracle stack. Failures are shrunk to minimal
// reproducers and optionally written to a corpus directory.
//
// Usage:
//
//	simfuzz [-seeds N] [-seed S] [-parallel W] [-budget D] [-shrink]
//	        [-corpus DIR] [-max-nodes N] [-faults] [-checkpoint FILE] [-quiet]
//	simfuzz -json [campaign flags]
//	simfuzz -server URL [campaign flags]
//	simfuzz -replay DIR
//
// The campaign verdict is a pure function of (-seed, -seeds, -faults): any
// -parallel value finds the same failures (a -budget cutoff is the one
// wall-clock-dependent exception, reported as skipped trials). -faults
// opens the benign-fault plane (gray failure, flapping, degradation,
// crash/restart) to the generator. -checkpoint records every completed
// trial's verdict in FILE; a campaign killed mid-run resumes from it with
// an identical final verdict. -replay re-checks every corpus entry in DIR
// against current code instead of fuzzing.
//
// -json emits the canonical campaign result JSON (internal/campaign's
// fuzz kind) instead of the text summary; -server submits the same
// campaign to a running duid server and prints the result it serves. The
// two outputs are byte-identical — the determinism gate CI's duid-smoke
// job enforces with cmp. Both modes reject the process-local flags
// (-budget, -checkpoint, -corpus, -replay): a campaign result must be a
// pure function of the spec, and the server journals durability itself.
//
// Exit status 0 when all scenarios (or corpus entries) pass, 1 when the
// oracles caught failures, 2 on usage or internal errors.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"dui/internal/campaign"
	"dui/internal/cli"
	"dui/internal/fuzz"
	"dui/internal/runner"
)

func main() {
	seeds := flag.Int("seeds", 200, "number of random scenarios to run")
	seed := cli.Seed("root seed (expands into per-scenario seeds)")
	parallel := cli.Parallel("worker pool size (0 = GOMAXPROCS)")
	budget := flag.Duration("budget", 0, "wall-time budget; stops handing out new trials when exceeded (0 = none)")
	shrink := flag.Bool("shrink", false, "shrink each failure to a minimal reproducer")
	corpus := flag.String("corpus", "", "directory to write failure reproducers to")
	maxNodes := flag.Int("max-nodes", 0, "topology size cap for generated scenarios (0 = default)")
	faultModes := flag.Bool("faults", false, "draw benign-fault specs (gray failure, flapping, degradation, crash/restart)")
	checkpoint := flag.String("checkpoint", "", "record per-trial verdicts in this file; resume a killed campaign from it")
	replay := flag.String("replay", "", "replay corpus entries from this directory instead of fuzzing")
	quiet := flag.Bool("quiet", false, "suppress per-failure and progress output; only the final summary")
	jsonOut := flag.Bool("json", false, "emit the canonical campaign result JSON (internal/campaign fuzz kind) instead of the text summary")
	server := flag.String("server", "", "submit the campaign to the duid server at this URL and print the result it serves")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: simfuzz [-seeds N] [-seed S] [-parallel W] [-budget D] [-shrink] [-corpus DIR] [-max-nodes N] [-faults] [-checkpoint FILE] [-quiet]\n")
		fmt.Fprintf(os.Stderr, "       simfuzz -json | -server URL [campaign flags]\n")
		fmt.Fprintf(os.Stderr, "       simfuzz -replay DIR\n")
		flag.PrintDefaults()
	}
	cli.Parse("simfuzz")
	if flag.NArg() != 0 {
		flag.Usage()
		os.Exit(2)
	}

	if *jsonOut || *server != "" {
		if *budget != 0 || *checkpoint != "" || *corpus != "" || *replay != "" {
			fmt.Fprintln(os.Stderr, "simfuzz: -json/-server campaigns reject the process-local flags -budget, -checkpoint, -corpus, -replay")
			os.Exit(2)
		}
		spec := campaign.JobSpec{Kind: campaign.KindFuzz, Fuzz: &campaign.FuzzSpec{
			Seeds: *seeds, RootSeed: *seed, MaxNodes: *maxNodes,
			Faults: *faultModes, Shrink: *shrink,
		}}
		res, err := cli.DispatchCampaign(context.Background(), "simfuzz", *server, spec, *parallel, *quiet)
		if err != nil {
			fmt.Fprintf(os.Stderr, "simfuzz: %v\n", err)
			os.Exit(2)
		}
		os.Stdout.Write(res)
		var fr campaign.FuzzResult
		if err := json.Unmarshal(res, &fr); err != nil {
			fmt.Fprintf(os.Stderr, "simfuzz: bad result: %v\n", err)
			os.Exit(2)
		}
		if len(fr.Failures) > 0 {
			os.Exit(1)
		}
		os.Exit(0)
	}

	if *replay != "" {
		os.Exit(replayCorpus(*replay, *quiet))
	}

	var log io.Writer = os.Stdout
	if *quiet {
		log = nil
	}
	res, err := fuzz.Run(context.Background(), fuzz.Config{
		Seeds:      *seeds,
		RootSeed:   *seed,
		Workers:    *parallel,
		Budget:     *budget,
		Shrink:     *shrink,
		Gen:        fuzz.GenConfig{MaxNodes: *maxNodes, FaultModes: *faultModes},
		Checkpoint: *checkpoint,
		Log:        log,
		OnProgress: func(p runner.Progress) {
			if *quiet || p.Done%50 != 0 && p.Done != p.Total {
				return
			}
			fmt.Fprintf(os.Stderr, "simfuzz: %d/%d trials, %.0fs virtual in %s\n",
				p.Done, p.Total, p.VirtualSeconds, p.Elapsed.Round(time.Millisecond))
		},
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "simfuzz: %v\n", err)
		os.Exit(2)
	}

	if *corpus != "" {
		for i := range res.Failures {
			f := &res.Failures[i]
			scn := f.Scenario
			if f.Shrunk != nil {
				scn = f.Shrunk.Clone()
			}
			e := &fuzz.Entry{
				Name:     fmt.Sprintf("seed-%016x", f.Seed),
				Rule:     f.Rule,
				Note:     fmt.Sprintf("found by simfuzz -seed %d (trial %d): %s", *seed, f.TrialIndex, f.Violations[0].Error()),
				Scenario: scn,
			}
			path, err := fuzz.SaveEntry(*corpus, e)
			if err != nil {
				fmt.Fprintf(os.Stderr, "simfuzz: %v\n", err)
				os.Exit(2)
			}
			if !*quiet {
				fmt.Printf("wrote %s\n", path)
			}
		}
	}

	ran := res.Trials - res.Skipped
	fmt.Printf("simfuzz: %d/%d scenarios run, %d failures", ran, res.Trials, len(res.Failures))
	if res.Resumed > 0 {
		fmt.Printf(" (%d resumed from checkpoint)", res.Resumed)
	}
	if res.Skipped > 0 {
		fmt.Printf(" (%d skipped: budget exhausted)", res.Skipped)
	}
	fmt.Println()
	if len(res.Failures) > 0 {
		os.Exit(1)
	}
}

// replayCorpus re-validates every persisted reproducer, returning the
// process exit code.
func replayCorpus(dir string, quiet bool) int {
	entries, err := fuzz.LoadCorpus(dir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "simfuzz: %v\n", err)
		return 2
	}
	failed := 0
	for _, e := range entries {
		if err := fuzz.Replay(e); err != nil {
			failed++
			fmt.Fprintf(os.Stderr, "simfuzz: %v\n", err)
		} else if !quiet {
			fmt.Printf("ok %s (rule %s)\n", e.Name, e.Rule)
		}
	}
	fmt.Printf("simfuzz: %d corpus entries, %d failed\n", len(entries), failed)
	if failed > 0 {
		return 1
	}
	return 0
}
