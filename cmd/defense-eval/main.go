// Command defense-eval evaluates the §5 countermeasures (E8): the Blink
// RTO-plausibility supervisor against both a genuine failure and the
// hijack, the Pytheas input-quality + outlier-filtering defense against
// the botnet, and the PCC loss-correlation detector plus the ε-range
// clamp against the equalizer.
//
// The report body now lives in internal/robustness (the full matrix
// driver, cmd/robustness, subsumes these three point evaluations and
// renders the same report under -defense-eval); this command remains as
// a byte-identical alias.
//
// The three sections are independent; -parallel N evaluates them
// concurrently on the trial runner (output order is unchanged).
package main

import (
	"os"

	"dui/internal/cli"
	"dui/internal/robustness"
)

func main() {
	var (
		seed     = cli.Seed("")
		parallel = cli.Parallel("section workers (0 = all cores; output identical at any setting)")
	)
	cli.Parse("defense-eval")
	robustness.WriteDefenseEval(os.Stdout, *seed, *parallel)
}
