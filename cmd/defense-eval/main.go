// Command defense-eval evaluates the §5 countermeasures (E8): the Blink
// RTO-plausibility supervisor against both a genuine failure and the
// hijack, the Pytheas input-quality + outlier-filtering defense against
// the botnet, and the PCC loss-correlation detector plus the ε-range
// clamp against the equalizer.
//
// The three sections are independent; -parallel N evaluates them
// concurrently on the trial runner (output order is unchanged).
package main

import (
	"context"
	"fmt"
	"strings"

	"dui"
	"dui/internal/blink"
	"dui/internal/cli"
	"dui/internal/pytheas"
	"dui/internal/runner"
)

func main() {
	var (
		seed     = cli.Seed("")
		parallel = cli.Parallel("section workers (0 = all cores; output identical at any setting)")
	)
	cli.Parse("defense-eval")

	fmt.Printf("§5 countermeasure evaluation\n")

	sections := []func(seed uint64) string{blinkSection, pytheasSection, pccSection}
	outputs, _ := runner.Map(context.Background(), sections, *seed, runner.Config{Workers: *parallel},
		func(_ context.Context, t runner.Trial, section func(uint64) string) (string, error) {
			return section(*seed), nil
		})
	for _, out := range outputs {
		fmt.Print(out)
	}
}

// blinkSection evaluates the RTO-plausibility supervisor.
func blinkSection(seed uint64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "\n[Blink supervisor] model trained from passively measured RTTs\n")
	clean := dui.RunFailover(dui.FailoverConfig{FailAt: 0, Duration: 20})
	model := dui.NewRTOModel(clean.SRTTs, 0.2)
	hook := func(p *blink.Pipeline) { dui.GuardPipeline(p, model) }

	genuine := dui.RunFailover(dui.FailoverConfig{FailAt: 20, Duration: 45, Hook: hook})
	fmt.Fprintf(&b, "  genuine failure:  rerouted=%v latency=%.2fs vetoes=%d recovered=%d/%d\n",
		genuine.Rerouted, genuine.DetectionLatency, genuine.VetoedReroutes,
		genuine.RecoveredFlows, genuine.Config.Flows)
	attack := dui.RunHijack(dui.HijackConfig{Seed: seed, Hook: hook})
	fmt.Fprintf(&b, "  hijack attempt:   rerouted=%v vetoes=%d hijacked packets=%d (attacker held %d cells)\n",
		attack.Rerouted, attack.VetoedReroutes, attack.HijackedPackets, attack.MaliciousCellsAtTrigger)
	return b.String()
}

// pytheasSection evaluates dedup + distribution filtering.
func pytheasSection(seed uint64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "\n[Pytheas defense] 15%% botnet with 5x report volume\n")
	base := dui.PytheasConfig{Seed: seed}
	atk := pytheas.Poison{Bots: 150, ReportMultiplier: 5}.Defaults()
	vuln := dui.RunPytheas(base, atk)
	defended := base
	defended.E2.Aggregate = pytheas.MADFiltered(3)
	defended.DedupReports = true
	prot := dui.RunPytheas(defended, atk)
	noatk := dui.RunPytheas(base, nil)
	fmt.Fprintf(&b, "  clean QoE %.2f | attacked (mean agg) %.2f | defended (dedup+MAD) %.2f\n",
		noatk.HonestQoELate, vuln.HonestQoELate, prot.HonestQoELate)
	// The detector view.
	v := dui.GroupReportCheck(poisonedWindow(), 4)
	fmt.Fprintf(&b, "  group-distribution detector on a poisoned window: %s\n", v)
	return b.String()
}

// pccSection evaluates the detector + epsilon clamp.
func pccSection(seed uint64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "\n[PCC defense]\n")
	runs := dui.OscSweep([]dui.OscConfig{
		{Duration: 90, Seed: seed},
		{Duration: 90, Seed: seed, Attack: true},
	}, 0)
	cleanPCC, attacked := runs[0], runs[1]
	fmt.Fprintf(&b, "  loss-correlation detector: clean=%s\n", dui.PCCLossCorrelation(cleanPCC.Records))
	fmt.Fprintf(&b, "                             attacked=%s\n", dui.PCCLossCorrelation(attacked.Records))
	for _, cap := range []float64{0.05, 0.03, 0.01} {
		_, amp := dui.ForcedOscillation(0.01, cap, 20)
		fmt.Fprintf(&b, "  ε clamp %.2f -> forced oscillation bounded to ±%.0f%%\n", cap, 100*amp/2)
	}
	return b.String()
}

// poisonedWindow builds a representative contaminated report window for
// the detector demonstration: 85%% honest around QoE 4.5, 15%% bots at 0.2.
func poisonedWindow() []float64 {
	w := make([]float64, 200)
	for i := range w {
		w[i] = 4.5
		if i%7 == 0 {
			w[i] = 0.2
		}
	}
	return w
}
