// Command robustness evaluates the full defense robustness matrix: every
// §3.2/§4 case-study system × its attacks × guard-on/guard-off × benign
// fault profile, each cell scored over twin-run trials (attacked run plus
// attack-free twin at the same seed) with the standardized metrics of
// internal/robustness — detect rate, false-veto rate, normalized damage,
// twin damage, and guard cost.
//
// The trial body lives in internal/campaign's robustness job kind; this
// binary is a thin client over it. -json emits the canonical campaign
// result JSON instead of the table, and -server submits the matrix to a
// running duid server — both byte-identical to inline execution at any
// -parallel setting.
//
// -defense-eval renders the legacy cmd/defense-eval §5 countermeasure
// report instead of the matrix (the three-system evaluation that command
// used to compute on its own); the matrix driver subsumes it.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"dui/internal/campaign"
	"dui/internal/cli"
	"dui/internal/robustness"
)

func main() {
	var (
		systems  = flag.String("systems", "", "comma-separated system subset (default all: "+strings.Join(robustness.SystemNames(), ",")+")")
		profiles = flag.String("profiles", "", "comma-separated fault profiles (default all: none,gray,flap,degrade)")
		trials   = flag.Int("trials", 2, "twin-run reps per matrix cell")
		seed     = cli.Seed("root seed (every rep derives its own stream)")
		parallel = cli.Parallel("trial workers (0 = all cores; output identical at any setting)")
		jsonOut  = flag.Bool("json", false, "emit the canonical campaign result JSON instead of the table")
		server   = flag.String("server", "", "submit the matrix to the duid server at this URL")
		quick    = flag.Bool("quick", false, "reduced per-cell simulations for smoke runs")
		legacy   = flag.Bool("defense-eval", false, "render the legacy cmd/defense-eval §5 report instead of the matrix")
	)
	cli.Parse("robustness")

	if *legacy {
		robustness.WriteDefenseEval(os.Stdout, *seed, *parallel)
		return
	}

	spec := campaign.JobSpec{Kind: campaign.KindRobustness, Robustness: &campaign.RobustnessSpec{
		Systems:  splitList(*systems),
		Profiles: splitList(*profiles),
		Trials:   *trials,
		RootSeed: *seed,
		Quick:    *quick,
	}}
	raw, err := cli.DispatchCampaign(context.Background(), "robustness", *server, spec, *parallel, true)
	if err != nil {
		fmt.Fprintln(os.Stderr, "robustness:", err)
		os.Exit(1)
	}
	if *jsonOut {
		os.Stdout.Write(raw)
		return
	}
	var res campaign.RobustnessResult
	if err := json.Unmarshal(raw, &res); err != nil {
		fmt.Fprintln(os.Stderr, "robustness: bad result:", err)
		os.Exit(1)
	}
	fmt.Printf("Robustness matrix: %d systems x attacks x guard arms x %d profiles, %d trials/cell (seed %d)\n",
		len(res.Systems), len(res.Profiles), res.Trials, res.RootSeed)
	fmt.Print(robustness.RenderTable(res.Cells))
}

// splitList parses a comma-separated flag into its non-empty entries.
func splitList(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}
