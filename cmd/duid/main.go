// Command duid is the lab's campaign service (internal/campaign): a
// persistent server that accepts evaluation campaigns — scenario fuzzing,
// chaos sweeps, scenario batches, attack-frontier searches — over an HTTP
// JSON API, executes them on bounded worker pools, journals every
// completed trial so a campaign survives kill -9, and serves repeated
// submissions from a content-addressed result cache keyed by (canonical
// spec, code revision).
//
// Usage:
//
//	duid [-addr HOST:PORT] [-dir DIR] [-parallel W] [-shards N]
//	     [-shard-procs P] [-jobs J]
//
// State lives under -dir (job-store journal, per-job trial journals,
// result cache); a restarted duid over the same directory re-queues and
// resumes every unfinished campaign. -shards splits each job's seed range
// into contiguous shards; with -shard-procs P the shards run in P worker
// subprocesses (duid re-executes itself with the internal -run-shard
// flag, exchanging JSON on stdin/stdout). Result bytes are identical at
// every -parallel / -shards / -shard-procs setting.
//
// The API (see internal/campaign.Server.Handler):
//
//	POST /v1/jobs                submit a job spec, e.g.
//	                             {"kind":"fuzz","fuzz":{"seeds":500}}
//	GET  /v1/jobs                list jobs
//	GET  /v1/jobs/{id}[?wait=D]  status (long-poll with ?wait)
//	GET  /v1/jobs/{id}/result    canonical result JSON
//	GET  /v1/jobs/{id}/events    SSE progress stream
//	POST /v1/jobs/{id}/cancel    cancel
//	GET  /v1/version             build identity (= cache-key revision)
//
// The drivers cmd/simfuzz, cmd/chaos-eval, and cmd/advsearch submit to a
// running duid with their -server flag and emit the same canonical JSON
// their -json inline mode produces — byte-identical, by construction and
// by the duid-smoke CI gate.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"os/signal"
	"syscall"

	"dui/internal/buildinfo"
	"dui/internal/campaign"
	"dui/internal/cli"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8077", "listen address for the HTTP API")
	dir := flag.String("dir", "duid-state", "state directory (job journal, trial journals, result cache)")
	parallel := cli.Parallel("per-shard trial workers (0 = all cores; results identical at any setting)")
	shards := flag.Int("shards", 1, "contiguous seed-range shards per job (results identical at any setting)")
	shardProcs := flag.Int("shard-procs", 0, "run shards in this many worker subprocesses (0 = in-process)")
	jobs := flag.Int("jobs", 1, "concurrently executing jobs")
	runShard := flag.Bool("run-shard", false, "internal: execute one shard request from stdin and exit")
	cli.Parse("duid")

	if *runShard {
		os.Exit(runShardMain())
	}

	opts := campaign.Options{Workers: *parallel, Shards: *shards, Jobs: *jobs}
	if *shardProcs > 0 {
		opts.ShardParallel = *shardProcs
		opts.RunShard = subprocessShard
	}
	srv, err := campaign.NewServer(*dir, opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "duid: %v\n", err)
		os.Exit(2)
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "duid: %v\n", err)
		os.Exit(2)
	}
	fmt.Fprintf(os.Stderr, "duid: serving on http://%s (state %s, rev %s)\n",
		ln.Addr(), *dir, buildinfo.Revision())

	httpSrv := &http.Server{Handler: srv.Handler()}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		// Graceful stop: close the campaign layer first — canceling its
		// context aborts in-flight jobs non-terminally (they resume on the
		// next start; kill -9 gets the same guarantee from the journals
		// alone) and unblocks SSE and long-poll handlers, which otherwise
		// keep their connections open and stall Shutdown until the
		// watched job finishes.
		srv.Close()
		httpSrv.Shutdown(context.Background())
	}()
	if err := httpSrv.Serve(ln); err != nil && err != http.ErrServerClosed {
		fmt.Fprintf(os.Stderr, "duid: %v\n", err)
		os.Exit(2)
	}
	// A second Close after the signal path is a no-op; this covers the
	// Shutdown-without-signal path (e.g. tests driving Serve directly).
	if err := srv.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "duid: %v\n", err)
		os.Exit(2)
	}
}

// runShardMain is the worker-subprocess entry: one ShardRequest as JSON
// on stdin, the shard's TrialRecs as JSON on stdout.
func runShardMain() int {
	var req campaign.ShardRequest
	if err := json.NewDecoder(os.Stdin).Decode(&req); err != nil {
		fmt.Fprintf(os.Stderr, "duid: -run-shard: %v\n", err)
		return 2
	}
	recs, err := campaign.RunShard(context.Background(), req)
	if err != nil {
		fmt.Fprintf(os.Stderr, "duid: -run-shard: %v\n", err)
		return 1
	}
	if err := json.NewEncoder(os.Stdout).Encode(recs); err != nil {
		fmt.Fprintf(os.Stderr, "duid: -run-shard: %v\n", err)
		return 1
	}
	return 0
}

// subprocessShard executes one shard in a fresh duid -run-shard worker
// process. Trial records are pure functions of (spec, trial index), so
// process boundaries cannot perturb results — only how they're computed.
func subprocessShard(ctx context.Context, req campaign.ShardRequest) ([]campaign.TrialRec, error) {
	exe, err := os.Executable()
	if err != nil {
		return nil, fmt.Errorf("duid: %w", err)
	}
	in, err := json.Marshal(req)
	if err != nil {
		return nil, fmt.Errorf("duid: shard [%d,%d): %w", req.Lo, req.Hi, err)
	}
	cmd := exec.CommandContext(ctx, exe, "-run-shard")
	cmd.Stdin = bytes.NewReader(in)
	var out bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("duid: shard [%d,%d): %w", req.Lo, req.Hi, err)
	}
	var recs []campaign.TrialRec
	if err := json.Unmarshal(out.Bytes(), &recs); err != nil {
		return nil, fmt.Errorf("duid: shard [%d,%d): bad worker output: %w", req.Lo, req.Hi, err)
	}
	return recs, nil
}
