// Command blink-pop runs Blink at PoP scale: a bank of per-prefix flow
// selectors (internal/blink.MonitorBank) over a streamed population of
// millions of concurrent flows (internal/trace.PopShard), sharded across
// the trial runner with a deterministic merge (internal/popscale).
//
// Everything on stdout is a pure function of the flags — byte-identical
// at any -shards and -parallel setting (the property `make pop-smoke`
// asserts with cmp). Wall-clock throughput (simulated flows/sec,
// events/sec) and the peak-memory summary go to stderr, so redirecting
// stdout captures a reproducible artifact:
//
//	go run ./cmd/blink-pop -memstats > pop.txt
//	go run ./cmd/blink-pop -prefixes 16384 -shards 64   # 1M+ active flows
//
// With -audit-every k, every k-th prefix is mirrored into a shadow scalar
// blink.Monitor under the full selector-invariant audits, and the run
// fails loudly if the bank diverges from the reference implementation.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"dui/internal/cli"
	"dui/internal/popscale"
	"dui/internal/prof"
)

func main() {
	var cfg popscale.Config
	flag.IntVar(&cfg.Prefixes, "prefixes", 16384, "monitored /24 prefixes")
	flag.IntVar(&cfg.FlowsPerPrefix, "flows-per-prefix", 64, "concurrently active legitimate flows per prefix")
	flag.Float64Var(&cfg.Duration, "duration", 20, "simulated horizon (seconds)")
	flag.Float64Var(&cfg.PPS, "pps", 2, "mean per-flow packet rate")
	flag.Float64Var(&cfg.MeanFlowDuration, "flow-duration", 6.35, "mean legitimate flow duration (seconds)")
	flag.Float64Var(&cfg.Epoch, "epoch", 1, "prefix-interleave granularity (seconds)")
	flag.IntVar(&cfg.AttackedEvery, "attack-every", 16, "attack pool on every k-th prefix (0 = attack-free)")
	flag.IntVar(&cfg.AttackFlows, "attack-flows", 48, "attack pool size per attacked prefix (>= threshold so storms can win the majority vote)")
	flag.Float64Var(&cfg.StormAt, "storm-at", 0, "retransmission-storm start (0 = duration/2, <0 = never)")
	cli.SeedVar(&cfg.Seed, "root seed (prefix pid streams from ChildAt(seed, pid))")
	flag.IntVar(&cfg.Shards, "shards", 32, "contiguous prefix-range shards (output identical at any value)")
	cli.ParallelVar(&cfg.Parallel, "workers for the shard pool (0 = all cores; output identical at any value)")
	flag.IntVar(&cfg.AuditEvery, "audit-every", 0, "cross-check every k-th prefix against a shadow scalar Monitor (0 = off)")
	quick := flag.Bool("quick", false, "reduced-scale smoke run (512 prefixes, 10 s)")
	failures := flag.Int("failures", 5, "print the first N failure inferences")
	cli.Parse("blink-pop")
	defer prof.Start()()

	if *quick {
		cfg.Prefixes, cfg.Duration = 512, 10
	}

	res, err := popscale.Run(context.Background(), cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "blink-pop:", err)
		os.Exit(1)
	}
	cfg = res.Config // defaulted

	fmt.Printf("# blink-pop: prefixes=%d flows/prefix=%d duration=%gs pps=%g seed=%d\n",
		cfg.Prefixes, cfg.FlowsPerPrefix, cfg.Duration, cfg.PPS, cfg.Seed)
	fmt.Printf("active flows:  %d (%d attacked prefixes)\n", res.ActiveFlows, res.AttackedPrefixes)
	fmt.Printf("packets:       %d\n", res.Packets)
	fmt.Printf("occupied:      %d cells at t=%g\n", res.OccupiedCells, cfg.Duration)
	fmt.Printf("failures:      %d inferences on %d prefixes\n", len(res.Failures), res.PrefixesWithFailure)
	for i, f := range res.Failures {
		if i >= *failures {
			fmt.Printf("  … %d more\n", len(res.Failures)-i)
			break
		}
		fmt.Printf("  prefix %d failed at t=%.3fs\n", f.Prefix, f.Now)
	}
	if cfg.AuditEvery > 0 {
		fmt.Printf("audited:       %d prefixes bit-identical to scalar monitors\n", res.AuditedPrefixes)
	}
	fmt.Printf("state hash:    %016x\n", res.StateHash)

	fmt.Fprintf(os.Stderr, "wall: %.2fs  flows/sec: %.3gM  events/sec: %.3gM  (shards=%d parallel=%d)\n",
		res.WallSeconds, res.FlowsPerSec/1e6, res.EventsPerSec/1e6, cfg.Shards, cfg.Parallel)
	if rss, ok := prof.PeakRSS(); ok {
		fmt.Fprintf(os.Stderr, "peak RSS: %.1f MiB\n", float64(rss)/(1<<20))
	}
}
