// Command blink-survey reproduces the §3.1 prefix survey: for a synthetic
// population of popular destination prefixes (standing in for the top-20
// prefixes of the CAIDA traces), it measures tR — the mean time a
// legitimate flow remains in Blink's sample — and derives the malicious
// traffic fraction qm the attack needs against each prefix within one
// sample-reset budget.
package main

import (
	"flag"
	"fmt"
	"sort"

	"dui"
	"dui/internal/cli"
	"dui/internal/stats"
)

func main() {
	var (
		n        = flag.Int("prefixes", 20, "number of synthetic prefixes")
		flows    = flag.Int("flows", 500, "concurrent flows per prefix workload")
		seed     = cli.Seed("")
		parallel = cli.Parallel("")
	)
	cli.Parse("blink-survey")

	prefixes := dui.SyntheticSurvey(*n, *seed)
	rows := dui.RunSurveyN(dui.BlinkConfig{}, prefixes, *flows, *seed+1, *parallel)
	sort.Slice(rows, func(i, j int) bool { return rows[i].TR < rows[j].TR })

	fmt.Printf("§3.1 prefix survey — %d synthetic prefixes, Blink defaults (64 cells, 8.5 min reset)\n\n", *n)
	fmt.Printf("%-8s %12s %8s %10s %14s %16s\n",
		"prefix", "meanFlowDur", "pps", "tR (s)", "required qm", "E[hit] @ qm=5.25%")
	for _, r := range rows {
		hit := fmt.Sprintf("%8.0f s", r.HitAtPaperQm)
		if r.HitAtPaperQm > 510 {
			hit = " >budget"
		}
		fmt.Printf("%-8s %10.1fs %8.1f %10.2f %14.4f %16s\n",
			r.Name, r.MeanDuration, r.PPS, r.TR, r.RequiredQm, hit)
	}

	trs := make([]float64, len(rows))
	ge10 := 0
	feasible := 0
	for i, r := range rows {
		trs[i] = r.TR
		if r.TR >= 10 {
			ge10++
		}
		if r.HitAtPaperQm <= 510 {
			feasible++
		}
	}
	fmt.Printf("\nmedian tR: %.1f s   mean: %.1f s   prefixes with tR >= 10 s: %d/%d\n",
		stats.Median(trs), stats.Mean(trs), ge10, len(rows))
	fmt.Printf("prefixes attackable at the paper's qm=5.25%% within one reset budget: %d/%d\n", feasible, len(rows))
	fmt.Printf("\npaper: median tR ~5 s across the top-20 prefixes; longer tR requires higher qm.\n")
}
