// Command chaos-eval sweeps Blink's failure-inference stack against the
// benign-fault plane (internal/faults): a gray-failure process of scaled
// intensity ε runs on the primary path while (a) a guarded deployment
// faces a genuine mid-run failure and (b) an unguarded deployment faces no
// failure at all. Per intensity the sweep reports
//
//   - detect rate: guarded runs that still executed the genuine failover,
//   - median detection latency of those failovers,
//   - false-veto rate: guarded runs where the RTO-plausibility supervisor
//     blocked the genuine failover (§5 criterion ii under chaos), and
//   - false-reroute rate: unguarded, failure-free runs where gray noise
//     alone pushed the selector past its threshold.
//
// Every trial is a pure function of (root seed, trial index): the output
// is bit-identical at any -parallel setting.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"

	"dui/internal/blink"
	"dui/internal/faults"
	"dui/internal/runner"
	"dui/internal/stats"
	"dui/internal/supervisor"
)

const (
	failAt   = 20.0
	duration = 45.0
)

type trialOut struct {
	Rerouted     bool
	Latency      float64
	Vetoes       int
	FalseReroute bool
}

func main() {
	var (
		trials   = flag.Int("trials", 10, "trials per intensity level")
		seed     = flag.Uint64("seed", 1, "root seed (trial i derives its own stream)")
		parallel = flag.Int("parallel", 0, "trial workers (0 = all cores; output identical at any setting)")
		levels   = flag.Int("levels", 6, "gray intensity levels, evenly spaced over [0, 1]")
		csvOut   = flag.Bool("csv", false, "emit CSV instead of the table")
		quick    = flag.Bool("quick", false, "reduced sweep (3 levels x 3 trials) for smoke runs")
	)
	flag.Parse()
	if *quick {
		*trials, *levels = 3, 3
	}
	if *levels < 2 || *trials < 1 {
		fmt.Fprintln(os.Stderr, "chaos-eval: need -levels >= 2 and -trials >= 1")
		os.Exit(2)
	}
	eps := make([]float64, *levels)
	for i := range eps {
		eps[i] = float64(i) / float64(*levels-1)
	}

	// The supervisor model is trained once, from passively measured RTTs of
	// a clean chaos-free run — exactly what an operator can observe.
	clean := blink.RunFailover(blink.FailoverConfig{FailAt: 0, Duration: 20})
	model := supervisor.NewRTOModel(clean.SRTTs, 0.2)

	nTrials := *trials
	outs, err := runner.Run(context.Background(), *levels*nTrials, *seed,
		runner.Config{Workers: *parallel},
		func(_ context.Context, t runner.Trial) (trialOut, error) {
			e := eps[t.Index/nTrials]
			grayCfg := faults.GrayConfig{
				LossP: 0.03 * e, DupP: 0.01 * e, CorruptP: 0.005 * e,
				JitterP: 0.5, Jitter: 0.04 * e,
			}
			chaos := func(base uint64) func(blink.FailoverTopo) {
				if e == 0 {
					return nil // ε=0 stays bit-identical to a chaos-free run
				}
				return func(topo blink.FailoverTopo) {
					topo.PrimaryTrunk.SetFault(faults.NewGray(grayCfg, stats.ChildAt(t.Seed, base)))
					topo.PrimaryTail.SetFault(faults.NewGray(grayCfg, stats.ChildAt(t.Seed, base+1)))
				}
			}

			// (a) Guarded deployment, genuine failure under chaos.
			guarded := blink.RunFailover(blink.FailoverConfig{
				FailAt: failAt, Duration: duration,
				Hook:  func(p *blink.Pipeline) { supervisor.GuardPipeline(p, model) },
				Chaos: chaos(0),
			})
			// (b) Unguarded deployment, no failure: does chaos alone reroute?
			unguarded := blink.RunFailover(blink.FailoverConfig{
				FailAt: 0, Duration: duration,
				Chaos: chaos(2),
			})
			t.ReportVirtual(2 * duration)
			return trialOut{
				Rerouted:     guarded.Rerouted,
				Latency:      guarded.DetectionLatency,
				Vetoes:       guarded.VetoedReroutes,
				FalseReroute: unguarded.Rerouted,
			}, nil
		})
	if err != nil {
		fmt.Fprintln(os.Stderr, "chaos-eval:", err)
		os.Exit(1)
	}

	if *csvOut {
		fmt.Println("eps,trials,detect_rate,median_latency_s,false_veto_rate,false_reroute_rate")
	} else {
		fmt.Printf("Blink failure inference under gray failure (%d trials/level, seed %d)\n", nTrials, *seed)
		fmt.Printf("%6s %12s %16s %16s %18s\n", "eps", "detect", "median latency", "false vetoes", "false reroutes")
	}
	for li, e := range eps {
		detect, vetoRuns, falseRe := 0, 0, 0
		var lats []float64
		for _, o := range outs[li*nTrials : (li+1)*nTrials] {
			if o.Rerouted {
				detect++
				lats = append(lats, o.Latency)
			}
			if o.Vetoes > 0 {
				vetoRuns++
			}
			if o.FalseReroute {
				falseRe++
			}
		}
		n := float64(nTrials)
		if *csvOut {
			fmt.Printf("%.2f,%d,%.4f,%.4f,%.4f,%.4f\n",
				e, nTrials, float64(detect)/n, median(lats), float64(vetoRuns)/n, float64(falseRe)/n)
		} else {
			fmt.Printf("%6.2f %11.0f%% %15.3fs %15.0f%% %17.0f%%\n",
				e, 100*float64(detect)/n, median(lats), 100*float64(vetoRuns)/n, 100*float64(falseRe)/n)
		}
	}
}

func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if n := len(s); n%2 == 1 {
		return s[n/2]
	} else {
		return (s[n/2-1] + s[n/2]) / 2
	}
}
