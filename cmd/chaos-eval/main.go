// Command chaos-eval sweeps Blink's failure-inference stack against the
// benign-fault plane (internal/faults): a gray-failure process of scaled
// intensity ε runs on the primary path while (a) a guarded deployment
// faces a genuine mid-run failure and (b) an unguarded deployment faces no
// failure at all. Per intensity the sweep reports
//
//   - detect rate: guarded runs that still executed the genuine failover,
//   - median detection latency of those failovers,
//   - false-veto rate: guarded runs where the RTO-plausibility supervisor
//     blocked the genuine failover (§5 criterion ii under chaos), and
//   - false-reroute rate: unguarded, failure-free runs where gray noise
//     alone pushed the selector past its threshold.
//
// The trial body lives in internal/campaign's chaos job kind; this binary
// is a thin client over it. -json emits the canonical campaign result
// JSON instead of the table, and -server submits the sweep to a running
// duid server — both byte/row-identical to inline execution.
//
// Every trial is a pure function of (root seed, trial index): the output
// is bit-identical at any -parallel setting.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"dui/internal/campaign"
	"dui/internal/cli"
)

func main() {
	var (
		trials   = flag.Int("trials", 10, "trials per intensity level")
		seed     = cli.Seed("root seed (trial i derives its own stream)")
		parallel = cli.Parallel("trial workers (0 = all cores; output identical at any setting)")
		levels   = flag.Int("levels", 6, "gray intensity levels, evenly spaced over [0, 1]")
		csvOut   = flag.Bool("csv", false, "emit CSV instead of the table")
		jsonOut  = flag.Bool("json", false, "emit the canonical campaign result JSON instead of the table")
		server   = flag.String("server", "", "submit the sweep to the duid server at this URL")
		quick    = flag.Bool("quick", false, "reduced sweep (3 levels x 3 trials) for smoke runs")
	)
	cli.Parse("chaos-eval")
	if *quick {
		*trials, *levels = 3, 3
	}
	if *jsonOut && *csvOut {
		fmt.Fprintln(os.Stderr, "chaos-eval: -json and -csv are mutually exclusive")
		os.Exit(2)
	}

	spec := campaign.JobSpec{Kind: campaign.KindChaos, Chaos: &campaign.ChaosSpec{
		Trials: *trials, Levels: *levels, RootSeed: *seed,
	}}
	raw, err := cli.DispatchCampaign(context.Background(), "chaos-eval", *server, spec, *parallel, true)
	if err != nil {
		fmt.Fprintln(os.Stderr, "chaos-eval:", err)
		os.Exit(1)
	}
	if *jsonOut {
		os.Stdout.Write(raw)
		return
	}
	var res campaign.ChaosResult
	if err := json.Unmarshal(raw, &res); err != nil {
		fmt.Fprintln(os.Stderr, "chaos-eval: bad result:", err)
		os.Exit(1)
	}

	if *csvOut {
		fmt.Println("eps,trials,detect_rate,median_latency_s,false_veto_rate,false_reroute_rate")
	} else {
		fmt.Printf("Blink failure inference under gray failure (%d trials/level, seed %d)\n", res.Trials, res.RootSeed)
		fmt.Printf("%6s %12s %16s %16s %18s\n", "eps", "detect", "median latency", "false vetoes", "false reroutes")
	}
	for _, r := range res.Rows {
		if *csvOut {
			fmt.Printf("%.2f,%d,%.4f,%.4f,%.4f,%.4f\n",
				r.Eps, r.Trials, r.DetectRate, r.MedianLatency, r.FalseVetoRate, r.FalseRerouteRate)
		} else {
			fmt.Printf("%6.2f %11.0f%% %15.3fs %15.0f%% %17.0f%%\n",
				r.Eps, 100*r.DetectRate, r.MedianLatency, 100*r.FalseVetoRate, 100*r.FalseRerouteRate)
		}
	}
}
