// Command advsearch runs the black-box adversary synthesis of
// internal/advsearch against the deployed systems of this reproduction
// and emits attack-frontier curves — validated success rate as a function
// of attacker cost — as machine-readable JSON on stdout.
//
// For each selected system (Blink, Pytheas, PCC) and deployment (guarded
// by the internal/supervisor countermeasures or not), a seed-deterministic
// searcher (CEM, or simulated annealing with -searcher anneal) explores
// the system's attack-knob space for minimal-cost decision flips; the
// cheapest flipping candidates are then re-validated at independent seeds
// to price their reliability.
//
// The entire output is a pure function of (-seed, -gens, -pop, -searcher,
// -system, -guarded, -validate, -quick): bit-identical across reruns and
// across any -parallel setting, so a frontier is reproducible from the
// single seed printed inside it. Progress goes to stderr; stdout carries
// only the JSON.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"dui/internal/advsearch"
)

type systemOut struct {
	System   string                    `json:"system"`
	Guarded  bool                      `json:"guarded"`
	Searcher string                    `json:"searcher"`
	Evals    int                       `json:"evals"`
	Best     *advsearch.Candidate      `json:"best"`
	Frontier []advsearch.FrontierPoint `json:"frontier"`
	Gens     []advsearch.GenStat       `json:"gens"`
}

type output struct {
	Seed        uint64      `json:"seed"`
	Generations int         `json:"generations"`
	Pop         int         `json:"pop"`
	Validations int         `json:"validations"`
	Systems     []systemOut `json:"systems"`
}

func main() {
	var (
		system   = flag.String("system", "all", "blink | pytheas | pcc | all")
		guarded  = flag.String("guarded", "both", "on | off | both")
		searcher = flag.String("searcher", "cem", "cem | anneal")
		seed     = flag.Uint64("seed", 1, "root seed; the whole output derives from it")
		gens     = flag.Int("gens", 8, "search generations")
		pop      = flag.Int("pop", 24, "population per generation")
		validate = flag.Int("validate", 5, "validation replications per frontier candidate")
		parallel = flag.Int("parallel", 0, "evaluation workers (0 = all cores; output identical at any setting)")
		quick    = flag.Bool("quick", false, "reduced budget (3x8, 2 validations) for smoke runs")
	)
	flag.Parse()
	if *quick {
		*gens, *pop, *validate = 3, 8, 2
	}

	var s advsearch.Searcher
	switch *searcher {
	case "cem":
		s = advsearch.CEM{}
	case "anneal":
		s = advsearch.Anneal{}
	default:
		fmt.Fprintf(os.Stderr, "advsearch: unknown -searcher %q\n", *searcher)
		os.Exit(2)
	}

	var systems []string
	switch *system {
	case "all":
		systems = []string{"blink", "pytheas", "pcc"}
	case "blink", "pytheas", "pcc":
		systems = []string{*system}
	default:
		fmt.Fprintf(os.Stderr, "advsearch: unknown -system %q\n", *system)
		os.Exit(2)
	}
	var deployments []bool
	switch *guarded {
	case "both":
		deployments = []bool{false, true}
	case "off":
		deployments = []bool{false}
	case "on":
		deployments = []bool{true}
	default:
		fmt.Fprintf(os.Stderr, "advsearch: unknown -guarded %q\n", *guarded)
		os.Exit(2)
	}

	out := output{Seed: *seed, Generations: *gens, Pop: *pop, Validations: *validate}
	// Fixed iteration order (system-major, unguarded first) so the JSON
	// layout never depends on flag spelling.
	for _, sys := range systems {
		for _, g := range deployments {
			tgt := makeTarget(sys, g, *quick)
			fmt.Fprintf(os.Stderr, "advsearch: %s (searcher %s, %d evals)\n",
				tgt.Name(), s.Name(), *gens**pop)
			res := s.Search(tgt, advsearch.Config{
				Seed: *seed, Generations: *gens, Pop: *pop, Workers: *parallel,
			})
			front := advsearch.Frontier(tgt, res, *validate, *parallel)
			fmt.Fprintf(os.Stderr, "advsearch: %s: %d flips, %d frontier points\n",
				tgt.Name(), len(res.Flipped), len(front))
			out.Systems = append(out.Systems, systemOut{
				System: sys, Guarded: g, Searcher: s.Name(),
				Evals: res.Evals, Best: res.Best, Frontier: front, Gens: res.Gens,
			})
		}
	}

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fmt.Fprintf(os.Stderr, "advsearch: %v\n", err)
		os.Exit(1)
	}
}

// makeTarget builds the system under attack. Quick mode shrinks the
// per-evaluation simulations, not just the search budget, so smoke runs
// stay in CI-friendly time.
func makeTarget(system string, guarded, quick bool) advsearch.Target {
	switch system {
	case "blink":
		t := &advsearch.BlinkTarget{Guarded: guarded}
		if quick {
			t.Duration, t.MaxFlows = 4, 64
		}
		return t
	case "pytheas":
		t := advsearch.NewPytheasTarget(guarded)
		if quick {
			t.Sessions, t.Epochs = 200, 60
		}
		return t
	case "pcc":
		t := &advsearch.PCCTarget{Guarded: guarded}
		if quick {
			t.Duration = 24
		}
		return t
	}
	panic("unreachable: system validated in main")
}
