// Command advsearch runs the black-box adversary synthesis of
// internal/advsearch against the deployed systems of this reproduction
// and emits attack-frontier curves — validated success rate as a function
// of attacker cost — as machine-readable JSON on stdout.
//
// For each selected system (Blink, Pytheas, PCC) and deployment (guarded
// by the internal/supervisor countermeasures or not), a seed-deterministic
// searcher (CEM, or simulated annealing with -searcher anneal) explores
// the system's attack-knob space for minimal-cost decision flips; the
// cheapest flipping candidates are then re-validated at independent seeds
// to price their reliability.
//
// The search itself lives in internal/campaign's adv job kind
// (campaign.RunAdv); this binary is a thin client over it. -server
// submits the search to a running duid server instead of executing
// inline — the JSON is byte-identical either way.
//
// The entire output is a pure function of (-seed, -gens, -pop, -searcher,
// -system, -guarded, -validate, -quick): bit-identical across reruns and
// across any -parallel setting, so a frontier is reproducible from the
// single seed printed inside it. Stdout carries only the JSON.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"dui/internal/campaign"
	"dui/internal/cli"
)

func main() {
	var (
		system   = flag.String("system", "all", "blink | pytheas | pcc | all")
		guarded  = flag.String("guarded", "both", "on | off | both")
		searcher = flag.String("searcher", "cem", "cem | anneal")
		seed     = cli.Seed("root seed; the whole output derives from it")
		gens     = flag.Int("gens", 8, "search generations")
		pop      = flag.Int("pop", 24, "population per generation")
		validate = flag.Int("validate", 5, "validation replications per frontier candidate")
		parallel = cli.Parallel("evaluation workers (0 = all cores; output identical at any setting)")
		server   = flag.String("server", "", "submit the search to the duid server at this URL")
		quick    = flag.Bool("quick", false, "reduced budget (3x8, 2 validations) and shrunk per-eval simulations for smoke runs")
	)
	cli.Parse("advsearch")
	if *quick {
		*gens, *pop, *validate = 3, 8, 2
	}

	var systems []string
	switch *system {
	case "all":
		systems = nil // canonical default: blink, pytheas, pcc
	case "blink", "pytheas", "pcc":
		systems = []string{*system}
	default:
		fmt.Fprintf(os.Stderr, "advsearch: unknown -system %q\n", *system)
		os.Exit(2)
	}
	switch *guarded {
	case "both", "off", "on":
	default:
		fmt.Fprintf(os.Stderr, "advsearch: unknown -guarded %q\n", *guarded)
		os.Exit(2)
	}
	switch *searcher {
	case "cem", "anneal":
	default:
		fmt.Fprintf(os.Stderr, "advsearch: unknown -searcher %q\n", *searcher)
		os.Exit(2)
	}

	spec := campaign.JobSpec{Kind: campaign.KindAdv, Adv: &campaign.AdvSpec{
		Systems: systems, Guarded: *guarded, Searcher: *searcher,
		Seed: *seed, Gens: *gens, Pop: *pop, Validate: *validate, Quick: *quick,
	}}
	raw, err := cli.DispatchCampaign(context.Background(), "advsearch", *server, spec, *parallel, true)
	if err != nil {
		fmt.Fprintf(os.Stderr, "advsearch: %v\n", err)
		os.Exit(1)
	}
	os.Stdout.Write(raw)
}
