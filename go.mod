module dui

go 1.22
