// Package dui is an attack/defense laboratory for data-driven networks,
// reproducing "(Self) Driving Under the Influence: Intoxicating
// Adversarial Network Inputs" (Meier et al., HotNets 2019).
//
// Data-driven ("self-driving") networks take control decisions from
// data-plane signals: Blink reroutes prefixes when monitored TCP flows
// retransmit, Pytheas steers clients by their QoE reports, PCC picks
// sending rates by online utility experiments, and traceroute builds
// topology views from unauthenticated ICMP replies. Every one of those
// signals can be forged by whoever can send packets — which, on the
// Internet, is everyone. This module implements the systems, the attacks,
// the theory, and the §5 supervisor countermeasures, on a deterministic
// discrete-event network simulator.
//
// # Layout
//
// The root package is a facade re-exporting the main entry points. The
// implementation lives in internal packages:
//
//   - internal/stats, internal/graph, internal/packet: deterministic
//     randomness, graphs, and the packet model.
//   - internal/netsim: the discrete-event simulator with the §2 attacker
//     privileges (host injection, MitM link taps, operator control) as
//     first-class hooks.
//   - internal/tcpflow, internal/trace: a compact TCP endpoint model and
//     the synthetic workloads standing in for CAIDA traces.
//   - internal/blink, internal/pytheas, internal/pcc, internal/nethide,
//     internal/sppifo, internal/sketch, internal/ron: the case-study
//     systems and their attacks.
//   - internal/supervisor: the §5 driver/supervisor countermeasures.
//   - internal/core: the §2 threat model and the attack catalog.
//
// # Quick start
//
//	for _, cs := range dui.Catalog() {
//	    fmt.Println(cs)
//	    summary := cs.Run(1)
//	    for _, name := range summary.Names() {
//	        fmt.Printf("  %s = %.3f\n", name, summary.Metric(name))
//	    }
//	}
//
// Each experiment from the paper has a dedicated binary under cmd/ and a
// benchmark in bench_test.go; see DESIGN.md for the experiment index and
// EXPERIMENTS.md for reproduced-vs-paper results.
package dui
