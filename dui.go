package dui

import (
	"dui/internal/blink"
	"dui/internal/bnn"
	"dui/internal/conntrack"
	"dui/internal/core"
	"dui/internal/dapper"
	"dui/internal/graph"
	"dui/internal/nethide"
	"dui/internal/pcc"
	"dui/internal/pytheas"
	"dui/internal/ron"
	"dui/internal/sketch"
	"dui/internal/sppifo"
	"dui/internal/stats"
	"dui/internal/supervisor"
	"dui/internal/trace"
)

// Threat model (§2).
type (
	// Privilege is an attacker level: Host, MitM, or Operator.
	Privilege = core.Privilege
	// Target is an attack target class.
	Target = core.Target
	// Impact classifies attack consequences.
	Impact = core.Impact
	// CaseStudy is one implemented attack with a uniform runner.
	CaseStudy = core.CaseStudy
	// Summary is a case study's metric set.
	Summary = core.Summary
)

// Threat-model constants.
const (
	Host     = core.Host
	MitM     = core.MitM
	Operator = core.Operator

	Infrastructure = core.Infrastructure
	Endpoint       = core.Endpoint
)

// Catalog returns every implemented case-study attack.
func Catalog() []CaseStudy { return core.Catalog() }

// Blink (§3.1).
type (
	// BlinkConfig is Blink's data-plane configuration.
	BlinkConfig = blink.Config
	// BlinkModel is the §3.1 theoretical attack model behind Fig 2.
	BlinkModel = blink.Model
	// Fig2Config / Fig2Result parameterize and report the Fig 2
	// reproduction.
	Fig2Config = blink.Fig2Config
	Fig2Result = blink.Fig2Result
	// HijackConfig / HijackResult are the end-to-end E3 attack.
	HijackConfig = blink.HijackConfig
	HijackResult = blink.HijackResult
	// FailoverConfig / FailoverResult exercise Blink's legitimate
	// function.
	FailoverConfig = blink.FailoverConfig
	FailoverResult = blink.FailoverResult
)

// RunFig2 reproduces Fig 2 (theory envelopes + trace-driven simulations).
func RunFig2(cfg Fig2Config) *Fig2Result { return blink.RunFig2(cfg) }

// RunHijack runs the §3.1 traffic-hijack attack end to end.
func RunHijack(cfg HijackConfig) *HijackResult { return blink.RunHijack(cfg) }

// HijackTrials runs n independent hijack experiments in parallel
// (workers = 0 means GOMAXPROCS) with per-trial seeds derived from
// cfg.Seed; HijackEnsemble/SummarizeHijacks aggregate the outcomes.
func HijackTrials(cfg HijackConfig, n, workers int) []*HijackResult {
	return blink.HijackTrials(cfg, n, workers)
}

// HijackEnsemble summarizes a HijackTrials run.
type HijackEnsemble = blink.HijackEnsemble

// SummarizeHijacks aggregates hijack trials into ensemble statistics.
func SummarizeHijacks(results []*HijackResult) HijackEnsemble { return blink.Summarize(results) }

// RunFailover runs Blink's legitimate failure recovery.
func RunFailover(cfg FailoverConfig) *FailoverResult { return blink.RunFailover(cfg) }

// RequiredQm returns the malicious traffic fraction the Blink attack
// needs for a given flow-residence time tR and time budget.
func RequiredQm(cells, threshold int, tr, budget, confidence float64) float64 {
	return blink.RequiredQm(cells, threshold, tr, budget, confidence)
}

// SyntheticSurvey generates the E2 prefix population; RunSurvey measures
// per-prefix tR and attack difficulty.
func SyntheticSurvey(n int, seed uint64) []trace.SurveyPrefix {
	return trace.SyntheticSurvey(n, stats.NewRNG(seed))
}

// RunSurvey measures tR and required qm for each prefix workload.
func RunSurvey(cfg BlinkConfig, prefixes []trace.SurveyPrefix, flows int, seed uint64) []blink.SurveyRow {
	return blink.RunSurvey(cfg, prefixes, flows, seed)
}

// RunSurveyN is RunSurvey with an explicit parallel worker count
// (0 = GOMAXPROCS); rows are identical at every worker count.
func RunSurveyN(cfg BlinkConfig, prefixes []trace.SurveyPrefix, flows int, seed uint64, workers int) []blink.SurveyRow {
	return blink.RunSurveyN(cfg, prefixes, flows, seed, workers)
}

// Pytheas (§4.1).
type (
	// PytheasConfig parameterizes the group simulation.
	PytheasConfig = pytheas.SimConfig
	// PoisonAttack is the botnet report-poisoning attack.
	PoisonAttack = pytheas.Poison
	// ThrottleAttack is the MitM/operator selective-throttling attack.
	ThrottleAttack = pytheas.Throttle
)

// RunPytheas simulates one group under an attacker (nil = baseline).
func RunPytheas(cfg PytheasConfig, atk pytheas.Attacker) *pytheas.SimResult {
	return pytheas.Run(cfg, atk)
}

// PoisonSweep sweeps botnet fractions (E5).
func PoisonSweep(cfg PytheasConfig, fractions []float64, multiplier int) []pytheas.PoisonRow {
	return pytheas.PoisonSweep(cfg, fractions, multiplier)
}

// PoisonSweepN is PoisonSweep with an explicit parallel worker count
// (0 = GOMAXPROCS); rows are identical at every worker count.
func PoisonSweepN(cfg PytheasConfig, fractions []float64, multiplier, workers int) []pytheas.PoisonRow {
	return pytheas.PoisonSweepN(cfg, fractions, multiplier, workers)
}

// RunThrottle runs the CDN-stampede attack.
func RunThrottle(cfg PytheasConfig, coverage, severity float64) *pytheas.ThrottleOutcome {
	return pytheas.RunThrottle(cfg, coverage, severity)
}

// PCC (§4.2).
type (
	// PCCConfig parameterizes one PCC flow; OscConfig the E4 experiment.
	PCCConfig = pcc.Config
	OscConfig = pcc.OscConfig
	OscResult = pcc.OscResult
)

// RunOscillation runs the E4 experiment (clean or attacked).
func RunOscillation(cfg OscConfig) *OscResult { return pcc.RunOscillation(cfg) }

// OscSweep runs several E4 configurations in parallel (workers = 0 means
// GOMAXPROCS), returning results in configuration order.
func OscSweep(cfgs []OscConfig, workers int) []*OscResult { return pcc.OscSweep(cfgs, workers) }

// ForcedOscillation is the analytic ±5% oscillation model of §4.2.
func ForcedOscillation(epsMin, epsMax float64, rounds int) ([]float64, float64) {
	return pcc.ForcedOscillation(epsMin, epsMax, rounds)
}

// NetHide (§4.3).
type (
	// NetHideConfig parameterizes the obfuscation search.
	NetHideConfig = nethide.Config
	// PathMap is a (physical or virtual) topology as traceroute sees it.
	PathMap = nethide.PathMap
)

// Obfuscate computes a NetHide virtual topology for the graph.
func Obfuscate(g *graph.Graph, pairs []nethide.Pair, cfg NetHideConfig, seed uint64) (PathMap, nethide.Metrics) {
	return nethide.Obfuscate(g, pairs, cfg, stats.NewRNG(seed))
}

// MaliciousTopology computes the §4.3 operator lie hiding one link.
func MaliciousTopology(g *graph.Graph, pairs []nethide.Pair, a, b graph.NodeID) PathMap {
	return nethide.MaliciousTopology(g, pairs, a, b)
}

// Traceroute simulates the tool over a presented topology.
func Traceroute(pm PathMap, src, dst graph.NodeID) []graph.NodeID {
	return nethide.Traceroute(pm, src, dst)
}

// Topology constructors for experiments.
var (
	Abilene = graph.Abilene
	FatTree = graph.FatTree
)

// Breadth systems (§3.2).

// RunSPPIFO compares PIFO, SP-PIFO under random ranks, and SP-PIFO under
// the adversarial rank sequence.
func RunSPPIFO(queues int, seed uint64) sppifo.Outcome {
	return sppifo.Experiment{Queues: queues, Seed: seed}.Run()
}

// RunSketchPollution sweeps adversarial flow counts against FlowRadar
// decoding.
func RunSketchPollution(seed uint64, attackCounts []int) []sketch.PollutionRow {
	return sketch.PollutionExperiment{Seed: seed}.Run(attackCounts)
}

// RunProbeAttack runs the RON probe-manipulation attack.
func RunProbeAttack(nodes int, seed uint64, extraDelay float64) ron.Outcome {
	return ron.RunProbeAttack(nodes, seed, func(o *ron.Overlay) (ron.ProbeTamper, int) {
		return ron.DelayProbes(0, 1, extraDelay), -1
	}, 0, 1)
}

// DAPPER (§3.2): TCP performance diagnosis and its mis-blaming attacks.
type (
	// DapperScenario is a ground-truth bottleneck; DapperAttack a header
	// manipulation.
	DapperScenario = dapper.Scenario
	DapperAttack   = dapper.Attack
)

// DAPPER scenarios and attacks.
const (
	TrueNetwork  = dapper.TrueNetwork
	TrueReceiver = dapper.TrueReceiver
	TrueSender   = dapper.TrueSender

	NoDapperAttack        = dapper.None
	InjectRetransmissions = dapper.InjectRetransmissions
	ShrinkWindow          = dapper.ShrinkWindow
	InflateWindow         = dapper.InflateWindow
)

// RunDapper diagnoses one flow under a ground truth and an attack.
func RunDapper(sc DapperScenario, atk DapperAttack, duration float64) dapper.Outcome {
	return dapper.Run(sc, atk, duration)
}

// DapperConfusionMatrix runs every scenario × attack combination.
func DapperConfusionMatrix(duration float64) []dapper.Outcome {
	return dapper.ConfusionMatrix(duration)
}

// RunStateExhaustion runs the SilkRoad-style state-exhaustion attack.
func RunStateExhaustion(cfg conntrack.ExhaustionConfig) *conntrack.ExhaustionResult {
	return conntrack.RunExhaustion(cfg)
}

// RunBNNEvasion trains an in-network binary classifier and measures
// adversarial-example evasion at the given flip budgets.
func RunBNNEvasion(seed uint64, budgets []int) (studentAcc float64, rows []bnn.EvasionRow) {
	return bnn.Experiment{Seed: seed}.Run(budgets)
}

// Countermeasures (§5).
type (
	// Verdict is a supervisor's plausibility judgement.
	Verdict = supervisor.Verdict
	// RTOModel is the Blink supervisor's retransmission-timing model.
	RTOModel = supervisor.RTOModel
)

// NewRTOModel trains the Blink supervisor from passive RTT measurements.
func NewRTOModel(srtts []float64, rtoMin float64) *RTOModel {
	return supervisor.NewRTOModel(srtts, rtoMin)
}

// GuardPipeline installs the Blink supervisor on a pipeline.
var GuardPipeline = supervisor.GuardPipeline

// PCCLossCorrelation flags loss correlated with the faster rate trials.
var PCCLossCorrelation = supervisor.PCCLossCorrelation

// GroupReportCheck flags a deviating minority in a Pytheas group.
var GroupReportCheck = supervisor.GroupReportCheck
