package dui

import (
	"testing"

	"dui/internal/audit"
	"dui/internal/blink"
)

// fig2Traced runs a Fig 2 experiment with a MonAudit (and recorder)
// attached to every trial, returning the flattened trace after verifying
// the selector invariants held on each run.
func fig2Traced(t *testing.T, cfg Fig2Config, workers int) []audit.Event {
	t.Helper()
	cfg.Parallel = workers
	n := cfg.Defaults().Runs
	recs := make([]*audit.Recorder, n)
	auds := make([]*audit.MonAudit, n)
	cfg.ObserveTrial = func(run int, m *blink.Monitor) {
		recs[run] = audit.NewRecorder()
		auds[run] = audit.AttachMonitor(m, recs[run])
	}
	res := RunFig2(cfg)
	for run, a := range auds {
		if a == nil {
			t.Fatalf("trial %d was never observed", run)
		}
		if err := a.Check(res.Config.Duration); err != nil {
			t.Fatalf("workers=%d run %d: %v", workers, run, err)
		}
	}
	return audit.Flatten(recs)
}

// TestFig2AuditedTraceParity is the executable form of the repo's
// bit-identity contract: a sequential and a parallel Fig 2 run must emit
// exactly the same selector event sequence, and every trial must satisfy
// the selector invariants. A divergence fails with the first differing
// event — the same localization cmd/simtrace gives on saved traces.
func TestFig2AuditedTraceParity(t *testing.T) {
	cfg := Fig2Config{Runs: 4, Duration: 60, LegitFlows: 300, MeanFlowDuration: 8}
	assertParity(t, cfg)
}

// TestFig2AuditedTraceParityFullScale repeats the parity check near the
// experiment's real scale. It only runs under DUI_AUDIT=1 (`make audit`),
// keeping the default suite fast.
func TestFig2AuditedTraceParityFullScale(t *testing.T) {
	if !audit.EnabledFromEnv() {
		t.Skip("set DUI_AUDIT=1 to run the full-scale audited parity check")
	}
	cfg := Fig2Config{Runs: 10, Duration: 250, LegitFlows: 1000, MeanFlowDuration: 8}
	assertParity(t, cfg)
}

func assertParity(t *testing.T, cfg Fig2Config) {
	seq := fig2Traced(t, cfg, 1)
	par := fig2Traced(t, cfg, 4)
	if len(seq) == 0 {
		t.Fatal("no selector events recorded")
	}
	if idx, diverged := audit.Diff(seq, par); diverged {
		get := func(evs []audit.Event) any {
			if idx < len(evs) {
				return evs[idx]
			}
			return "(trace ended)"
		}
		t.Fatalf("sequential and parallel traces diverge at event #%d:\n  workers=1: %v\n  workers=4: %v",
			idx, get(seq), get(par))
	}
}
