#!/usr/bin/env bash
# robustness-smoke: the robustness-matrix determinism gate.
#
# The quick matrix is run three ways — inline on one worker, inline on
# four workers, and submitted to a duid server — and all three JSON
# results must be byte-identical (cmp): trial seeds derive from cell
# coordinates alone, so neither the worker pool nor the service path may
# leak into result bytes. The legacy report alias is checked the same
# way (cmd/defense-eval vs cmd/robustness -defense-eval). The matrix
# JSON is left at $OUT for CI to upload as an artifact.
set -euo pipefail
cd "$(dirname "$0")/.."

PORT=${PORT:-18079}
BASE="http://127.0.0.1:$PORT"
OUT=${OUT:-robustness-matrix.json}
WORK=$(mktemp -d)
DUID_PID=

say() { echo "robustness-smoke: $*"; }
die() { say "FAIL: $*"; exit 1; }

cleanup() {
	[ -n "$DUID_PID" ] && kill -9 "$DUID_PID" 2>/dev/null
	rm -rf "$WORK"
}
trap cleanup EXIT

wait_up() {
	for _ in $(seq 1 100); do
		curl -sf "$BASE/v1/version" >/dev/null 2>&1 && return 0
		sleep 0.1
	done
	die "duid at $BASE never came up"
}

say "building robustness, defense-eval, and duid"
go build -o "$WORK/robustness" ./cmd/robustness
go build -o "$WORK/defense-eval" ./cmd/defense-eval
go build -o "$WORK/duid" ./cmd/duid

say "quick matrix inline: -parallel 1 vs -parallel 4"
"$WORK/robustness" -quick -json -parallel 1 >"$WORK/p1.json"
"$WORK/robustness" -quick -json -parallel 4 >"$WORK/p4.json"
cmp "$WORK/p1.json" "$WORK/p4.json" ||
	die "matrix diverged across worker counts"
say "worker-count independent matrix verified"

say "starting duid (state $WORK/state)"
"$WORK/duid" -addr "127.0.0.1:$PORT" -dir "$WORK/state" 2>"$WORK/duid.log" &
DUID_PID=$!
disown
wait_up

"$WORK/robustness" -quick -json -server "$BASE" >"$WORK/server.json"
cmp "$WORK/p1.json" "$WORK/server.json" ||
	die "server-mediated matrix diverged from inline execution"
say "server result is byte-identical to inline execution"

# An identical resubmission must answer from the result cache.
"$WORK/robustness" -quick -json -server "$BASE" >"$WORK/cached.json"
cmp "$WORK/p1.json" "$WORK/cached.json" || die "cached resubmission diverged"
grep -q '"cached":true' "$WORK/state/jobs.journal" ||
	die "resubmission was not served from the result cache"
say "identical resubmission served from the result cache"

say "legacy alias: cmd/defense-eval vs cmd/robustness -defense-eval"
"$WORK/defense-eval" >"$WORK/legacy-a.txt"
"$WORK/robustness" -defense-eval >"$WORK/legacy-b.txt"
cmp "$WORK/legacy-a.txt" "$WORK/legacy-b.txt" ||
	die "-defense-eval alias diverged from cmd/defense-eval"
say "legacy defense-eval report is byte-identical through the alias"

cp "$WORK/p1.json" "$OUT"
say "matrix JSON written to $OUT"
say "PASS"
