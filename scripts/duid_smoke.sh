#!/usr/bin/env bash
# duid-smoke: the campaign-service crash-recovery and determinism gate.
#
# A fuzz campaign is run twice: once directly (simfuzz -json) and once
# through a duid server that is kill -9'd mid-campaign and restarted over
# the same state directory. The resumed job must report journal-replayed
# trials and serve result bytes identical (cmp) to the direct run; an
# identical resubmission must then be answered from the result cache
# (cached:true, no re-execution), and the driver's -server mode must
# return the same bytes end to end.
set -euo pipefail
cd "$(dirname "$0")/.."

SEEDS=${SEEDS:-6000}          # big enough that -parallel 1 gives a wide kill window
PORT1=${PORT1:-18077}
PORT2=${PORT2:-18078}
BASE1="http://127.0.0.1:$PORT1"
BASE2="http://127.0.0.1:$PORT2"
WORK=$(mktemp -d)
DUID_PID=

say() { echo "duid-smoke: $*"; }
die() { say "FAIL: $*"; exit 1; }

cleanup() {
	[ -n "$DUID_PID" ] && kill -9 "$DUID_PID" 2>/dev/null
	rm -rf "$WORK"
}
trap cleanup EXIT

# Tiny extractors for duid's compact one-object JSON responses.
jstr() { sed -n "s/.*\"$1\":\"\([^\"]*\)\".*/\1/p"; }
jnum() { sed -n "s/.*\"$1\":\([0-9][0-9]*\).*/\1/p"; }

wait_up() { # wait_up BASE — until /v1/version answers
	for _ in $(seq 1 100); do
		curl -sf "$1/v1/version" >/dev/null 2>&1 && return 0
		sleep 0.1
	done
	die "duid at $1 never came up"
}

say "building duid and simfuzz"
go build -o "$WORK/duid" ./cmd/duid
go build -o "$WORK/simfuzz" ./cmd/simfuzz

say "direct run: simfuzz -json -seeds $SEEDS"
# Exit 1 just means the campaign found failures — still a valid result.
"$WORK/simfuzz" -json -quiet -seeds "$SEEDS" >"$WORK/direct.json" || [ $? -eq 1 ]

say "starting duid (single worker, state $WORK/state)"
"$WORK/duid" -addr "127.0.0.1:$PORT1" -dir "$WORK/state" -parallel 1 \
	2>"$WORK/duid1.log" &
DUID_PID=$!
disown
wait_up "$BASE1"

spec="{\"kind\":\"fuzz\",\"fuzz\":{\"seeds\":$SEEDS}}"
id=$(curl -sf -X POST -d "$spec" "$BASE1/v1/jobs" | jstr id)
[ -n "$id" ] || die "no job id from submit"
say "submitted job $id; waiting for mid-campaign progress"

while :; do
	st=$(curl -sf "$BASE1/v1/jobs/$id")
	state=$(jstr state <<<"$st")
	done_n=$(jnum done <<<"$st")
	[ "$state" = done ] && die "campaign finished before the kill (raise SEEDS)"
	[ "${done_n:-0}" -ge 300 ] && break
	sleep 0.05
done

say "kill -9 at $done_n/$SEEDS trials"
kill -9 "$DUID_PID"
wait "$DUID_PID" 2>/dev/null || true
DUID_PID=

say "restarting duid over the same state directory"
"$WORK/duid" -addr "127.0.0.1:$PORT2" -dir "$WORK/state" \
	2>"$WORK/duid2.log" &
DUID_PID=$!
disown
wait_up "$BASE2"

# ?wait long-polls return on every progress change, so bound the wait by
# wall clock, not poll count.
deadline=$((SECONDS + 300))
while [ "$SECONDS" -lt "$deadline" ]; do
	st=$(curl -sf "$BASE2/v1/jobs/$id?wait=5s")
	state=$(jstr state <<<"$st")
	case "$state" in done) break ;; failed | canceled) die "resumed job $state: $st" ;; esac
done
[ "$state" = done ] || die "resumed job never finished: $st"
resumed=$(jnum resumed <<<"$st")
[ "${resumed:-0}" -gt 0 ] || die "restarted job replayed no journaled trials: $st"
say "job resumed ($resumed trials replayed from the journal) and finished"

curl -sf "$BASE2/v1/jobs/$id/result" >"$WORK/server.json"
cmp "$WORK/direct.json" "$WORK/server.json" ||
	die "server-mediated result diverged from direct execution"
say "server result is byte-identical to the direct run"

st2=$(curl -sf -X POST -d "$spec" "$BASE2/v1/jobs")
grep -q '"cached":true' <<<"$st2" || die "resubmitted job not served from cache: $st2"
id2=$(jstr id <<<"$st2")
curl -sf "$BASE2/v1/jobs/$id2/result" >"$WORK/cached.json"
cmp "$WORK/direct.json" "$WORK/cached.json" || die "cached result diverged"
say "identical resubmission served from the result cache"

"$WORK/simfuzz" -server "$BASE2" -quiet -seeds "$SEEDS" >"$WORK/client.json" || [ $? -eq 1 ]
cmp "$WORK/direct.json" "$WORK/client.json" || die "simfuzz -server diverged"
say "simfuzz -server output matches -json inline output"

say "PASS"
