GO ?= go

.PHONY: check vet build test race bench report

## check: the full gate — vet, build, race-enabled tests.
check: vet build race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

## bench: the per-experiment and substrate benchmarks (minutes).
bench:
	$(GO) test -bench=. -benchmem .

## report: regenerate the full reproduction report on all cores.
report:
	$(GO) run ./cmd/duireport -parallel 0
