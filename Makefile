GO ?= go

.PHONY: check vet build test race audit bench bench-smoke bench-gate pop-smoke fuzz-smoke chaos-smoke advsearch-smoke duid-smoke robustness-smoke report

## check: the full gate — vet, build, race-enabled tests.
check: vet build race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

## audit: the race-enabled suite with the invariant-audit layer forced on
## (engine causality checks + audited experiment paths). The 0 allocs/op
## guards are skipped under -race, so this does not fight the alloc gate.
audit:
	DUI_AUDIT=1 $(GO) test -race ./...

## bench: the per-experiment and substrate benchmarks (minutes); refreshes
## BENCH_4.json, the repo's benchmark-trajectory file (BENCH_2.json is the
## frozen pre-timing-wheel snapshot, BENCH_3.json the pre-PoP-scale one).
bench:
	$(GO) test -run '^$$' -bench=. -benchmem -count=1 -timeout 60m . | $(GO) run ./cmd/benchjson -o BENCH_4.json

## bench-smoke: the fast substrate subset CI runs on every push.
bench-smoke:
	$(GO) test -run '^$$' -bench=Substrate -benchtime=100x -benchmem .

## bench-gate: run the engine benchmarks and compare events/sec against the
## checked-in floors in BENCH_FLOOR.json. Perf floors are warn-only (shared
## runners are noisy), but the 0 allocs/op ceilings are scheduling-independent
## and hard-fail via -strict-allocs.
bench-gate:
	$(GO) test -run '^$$' -bench='Engine|PopScale' -benchmem -count=1 -timeout 20m . \
		| $(GO) run ./cmd/benchjson -o BENCH_GATE.json
	$(GO) run ./cmd/benchgate -floor BENCH_FLOOR.json -strict-allocs BENCH_GATE.json

## pop-smoke: the PoP-scale determinism gate — a 512-prefix / ~34k-flow
## blink-pop run with the bank-vs-scalar audit on every 8th prefix, executed
## once single-shard single-worker and once with 7 shards on 4 workers; the
## deterministic stdout must be byte-identical (cmp) or the target fails.
pop-smoke:
	$(GO) build -o /tmp/blink-pop ./cmd/blink-pop
	/tmp/blink-pop -quick -audit-every 8 -shards 1 -parallel 1 2>/dev/null > /tmp/pop-smoke-a.txt
	/tmp/blink-pop -quick -audit-every 8 -shards 7 -parallel 4 2>/dev/null > /tmp/pop-smoke-b.txt
	cmp /tmp/pop-smoke-a.txt /tmp/pop-smoke-b.txt
	@echo "pop-smoke: shard/worker-count independent output verified"

## fuzz-smoke: a race-enabled 200-seed scenario-fuzzing campaign with
## shrinking plus a replay of the committed reproducer corpus — the
## audit-oracle campaign CI runs on every push (seconds, deterministic).
fuzz-smoke:
	$(GO) run -race ./cmd/simfuzz -seeds 200 -shrink
	$(GO) run -race ./cmd/simfuzz -replay internal/fuzz/testdata/corpus

## chaos-smoke: the race-enabled fault-plane gate — a reduced chaos-eval
## sweep (gray-failure intensity vs Blink inference, 3 levels x 3 trials)
## plus a short fault-mode fuzzing campaign. Both are seed-deterministic.
chaos-smoke:
	$(GO) run -race ./cmd/chaos-eval -quick
	$(GO) run -race ./cmd/simfuzz -seeds 100 -faults -shrink

## advsearch-smoke: the adversary-synthesis determinism gate — a quick
## Blink attack-frontier search (guarded vs unguarded, CEM) run once on one
## worker and once on four; the JSON on stdout must be byte-identical (cmp)
## or the target fails.
advsearch-smoke:
	$(GO) build -o /tmp/advsearch ./cmd/advsearch
	/tmp/advsearch -quick -system blink -parallel 1 2>/dev/null > /tmp/advsearch-a.json
	/tmp/advsearch -quick -system blink -parallel 4 2>/dev/null > /tmp/advsearch-b.json
	cmp /tmp/advsearch-a.json /tmp/advsearch-b.json
	@echo "advsearch-smoke: worker-count independent frontier verified"

## duid-smoke: the campaign-service gate — a fuzz campaign submitted over
## the duid HTTP API is kill -9'd mid-run, restarted over the same state
## directory, and must resume from its journals to result bytes identical
## (cmp) to a direct simfuzz -json run; an identical resubmission must be
## served from the result cache without re-execution.
duid-smoke:
	./scripts/duid_smoke.sh

## robustness-smoke: the robustness-matrix determinism gate — the quick
## matrix run inline on 1 and 4 workers and via a duid server must be
## byte-identical (cmp), the resubmission must hit the result cache, and
## cmd/robustness -defense-eval must match cmd/defense-eval byte for
## byte. Leaves the matrix JSON at robustness-matrix.json (CI artifact).
robustness-smoke:
	./scripts/robustness_smoke.sh

## report: regenerate the full reproduction report on all cores.
report:
	$(GO) run ./cmd/duireport -parallel 0
