// Defenses walkthrough (§5): the supervisor architecture of Fig 3 in
// action — a driver (Blink) paired with a supervisor that models
// plausible behaviour, vetoes implausible reactions, and leaves the
// legitimate function intact.
//
//	go run ./examples/defenses
package main

import (
	"fmt"

	"dui"
	"dui/internal/blink"
)

func main() {
	// Train the supervisor from passive RTT measurements (no failure).
	calib := dui.RunFailover(dui.FailoverConfig{FailAt: 0, Duration: 20})
	model := dui.NewRTOModel(calib.SRTTs, 0.2)
	guard := func(p *blink.Pipeline) { dui.GuardPipeline(p, model) }
	fmt.Printf("supervisor trained from %d passive RTT samples\n\n", len(calib.SRTTs))

	// Criterion (ii): no impact on the driver's legitimate job.
	genuine := dui.RunFailover(dui.FailoverConfig{FailAt: 20, Duration: 45, Hook: guard})
	fmt.Printf("real failure with guard: rerouted=%v in %.2fs, vetoes=%d (genuine RTO timing passes)\n",
		genuine.Rerouted, genuine.DetectionLatency, genuine.VetoedReroutes)

	// Criterion (i): prevent adversarial inputs.
	hijack := dui.RunHijack(dui.HijackConfig{Seed: 1, Hook: guard})
	fmt.Printf("hijack with guard:       rerouted=%v, vetoes=%d, hijacked packets=%d\n",
		hijack.Rerouted, hijack.VetoedReroutes, hijack.HijackedPackets)
	fmt.Println("the attacker held a sample majority, but her packet pacing does not look like RTOs")

	// PCC: detect, then constrain the decision range.
	attacked := dui.RunOscillation(dui.OscConfig{Duration: 90, Seed: 2, Attack: true})
	fmt.Printf("\nPCC equalizer detector: %s\n", dui.PCCLossCorrelation(attacked.Records))
	for _, cap := range []float64{0.05, 0.02, 0.01} {
		_, amp := dui.ForcedOscillation(0.01, cap, 20)
		fmt.Printf("allowed operating range ε<=%.2f bounds the forced oscillation to ±%.0f%%\n", cap, 100*amp/2)
	}
}
