// Dataplane breadth walkthrough (§3.2): three more data-plane programs
// turned against their operators — DAPPER's diagnosis mis-blamed, a
// SilkRoad-style connection table exhausted, and an in-network classifier
// evaded with a handful of header-bit flips.
//
//	go run ./examples/dataplane-breadth
package main

import (
	"fmt"

	"dui"
	"dui/internal/conntrack"
)

func main() {
	fmt.Println("== DAPPER: who gets blamed? ==")
	honest := dui.RunDapper(dui.TrueSender, dui.NoDapperAttack, 20)
	fmt.Printf("a healthy application-limited flow: diagnosed %s\n", honest.Diagnosis)
	blamed := dui.RunDapper(dui.TrueSender, dui.InjectRetransmissions, 20)
	fmt.Printf("same flow + %d injected duplicate segments: diagnosed %s\n",
		blamed.Budget, blamed.Diagnosis)
	fmt.Println("the operator now 'fixes' a congestion problem that does not exist")

	fmt.Println("\n== Per-connection state exhaustion ==")
	clean := dui.RunStateExhaustion(conntrack.ExhaustionConfig{Seed: 1})
	flood := dui.RunStateExhaustion(conntrack.ExhaustionConfig{Seed: 1, AttackSYNRate: 2000})
	fmt.Printf("no attack:   table %d/%d, %.0f%% of connections broken by a pool update\n",
		clean.TableOccupancy, clean.Config.TableCap, 100*clean.BrokenFraction)
	fmt.Printf("2000 SYN/s:  table %d/%d, %.0f%% of connections broken by a pool update\n",
		flood.TableOccupancy, flood.Config.TableCap, 100*flood.BrokenFraction)

	fmt.Println("\n== In-network BNN adversarial examples ==")
	acc, rows := dui.RunBNNEvasion(1, []int{2, 4})
	fmt.Printf("deployed classifier accuracy: %.0f%%\n", 100*acc)
	for _, r := range rows {
		kind := "random flips "
		if r.Crafted {
			kind = "crafted flips"
		}
		fmt.Printf("budget %d, %s: %.0f%% evasion (avg %.1f bits used)\n",
			r.Budget, kind, 100*r.SuccessRate, r.MeanFlips)
	}
}
