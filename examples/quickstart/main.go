// Quickstart: enumerate the paper's threat model and run every
// implemented case-study attack at reduced scale.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"dui"
)

func main() {
	fmt.Println("Threat model (§2): attack catalog")
	fmt.Println("name                   system     sect  privilege  target       impacts")
	for _, cs := range dui.Catalog() {
		fmt.Println(cs)
	}

	fmt.Println("\nRunning every attack (reduced scale)...")
	for _, cs := range dui.Catalog() {
		s := cs.Run(1)
		fmt.Printf("\n[%s] %s\n", cs.Name, s.Note)
		for _, name := range s.Names() {
			fmt.Printf("  %-28s %10.3f\n", name, s.Metric(name))
		}
	}
}
