// Blink hijack walkthrough (§3.1): first Blink doing its job — sub-second
// recovery from a real failure — then the same machinery turned against
// it by a host-level attacker, and finally the theory that predicts when
// the attack becomes feasible.
//
//	go run ./examples/blink-hijack
package main

import (
	"fmt"

	"dui"
)

func main() {
	// 1. The legitimate function: a real link failure, real TCP flows.
	fmt.Println("== Blink working as designed ==")
	legit := dui.RunFailover(dui.FailoverConfig{FailAt: 20, Duration: 45})
	fmt.Printf("link fails at t=%.0fs -> Blink reroutes at t=%.2fs (latency %.2fs), %d/%d flows recover\n\n",
		legit.FailureAt, legit.RerouteTime, legit.DetectionLatency,
		legit.RecoveredFlows, legit.Config.Flows)

	// 2. The attack: nothing fails, but the attacker's always-active
	// flows have taken over the monitored sample and fake a
	// retransmission storm.
	fmt.Println("== The same machinery, attacked ==")
	atk := dui.RunHijack(dui.HijackConfig{Seed: 1})
	fmt.Printf("attacker holds %d/64 sample cells at t=%.0fs, fakes retransmissions ->\n",
		atk.MaliciousCellsAtTrigger, atk.Config.TriggerAt)
	fmt.Printf("Blink reroutes the healthy prefix onto the attacker's path %.2fs later; %d packets hijacked\n\n",
		atk.Latency, atk.HijackedPackets)

	// 3. The theory (§3.1): what fraction of traffic does the attacker
	// need, as a function of how long legitimate flows stay sampled?
	fmt.Println("== Attack feasibility (theory) ==")
	fmt.Println("tR (s)   required qm (95% confidence within one 8.5min reset)")
	for _, tr := range []float64{2, 5, 8.37, 15, 30} {
		fmt.Printf("%6.2f   %.4f\n", tr, dui.RequiredQm(64, 32, tr, 510, 0.95))
	}
	fmt.Println("\nthe paper's example point: tR=8.37s, qm=0.0525 — comfortably feasible.")
}
