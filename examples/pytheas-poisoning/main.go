// Pytheas poisoning walkthrough (§4.1): group-granularity decisions let a
// minority of bots degrade every client in the group; the §5 defense
// (report dedup + distribution filtering) takes the power back.
//
//	go run ./examples/pytheas-poisoning
package main

import (
	"fmt"

	"dui"
	"dui/internal/pytheas"
)

func main() {
	cfg := dui.PytheasConfig{Seed: 1}

	clean := dui.RunPytheas(cfg, nil)
	fmt.Printf("clean group: honest QoE %.2f, %.0f%% on the good CDN\n",
		clean.HonestQoELate, 100*clean.LateShare[0])

	bots := pytheas.Poison{Bots: 150, ReportMultiplier: 5}.Defaults()
	poisoned := dui.RunPytheas(cfg, bots)
	fmt.Printf("15%% bots (5x report volume): honest QoE %.2f, %.0f%% pushed to the bad CDN\n",
		poisoned.HonestQoELate, 100*poisoned.LateShare[1])

	defended := cfg
	defended.DedupReports = true
	defended.E2.Aggregate = pytheas.MADFiltered(3)
	safe := dui.RunPytheas(defended, bots)
	fmt.Printf("with the §5 defense (dedup + MAD filter): honest QoE %.2f\n", safe.HonestQoELate)

	// The detector view of a poisoned report window.
	window := poisonedWindow()
	fmt.Printf("\ngroup-distribution check on a poisoned window: %s\n", dui.GroupReportCheck(window, 4))

	// The MitM variant needs no bots at all.
	out := dui.RunThrottle(cfg, 0.7, 0.2)
	fmt.Printf("\nMitM throttling of the good CDN (no fake reports): QoE %.2f -> %.2f,\n",
		out.Baseline.HonestQoELate, out.Attacked.HonestQoELate)
	fmt.Printf("peak stampede pushes %.0f%% of the group onto the capacity-limited fallback site\n",
		100*out.PeakStampedeShare)
}

func poisonedWindow() []float64 {
	w := make([]float64, 200)
	for i := range w {
		w[i] = 4.5
		if i%7 == 0 {
			w[i] = 0.2
		}
	}
	return w
}
