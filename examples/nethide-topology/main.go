// NetHide walkthrough (§4.3): what traceroute really learns is whatever
// the answering infrastructure chooses to present. NetHide uses the
// mechanism defensively; a malicious operator uses it to lie arbitrarily.
//
//	go run ./examples/nethide-topology
package main

import (
	"fmt"

	"dui"
	"dui/internal/graph"
	"dui/internal/nethide"
)

func main() {
	g := dui.Abilene()
	pairs := nethide.AllPairs(g)
	phys := nethide.ShortestPaths(g, pairs)
	hot, hotD := phys.MaxDensity()
	fmt.Printf("Abilene: the hottest link is %s-%s with flow density %d — a link-flooding target\n\n",
		g.Name(hot.A), g.Name(hot.B), hotD)

	src, _ := g.NodeByName("SEA")
	dst, _ := g.NodeByName("NYC")
	fmt.Printf("truthful traceroute SEA->NYC: %s\n", render(g, dui.Traceroute(phys, src, dst)))

	// NetHide: minimal lying, bounded flow density.
	virt, m := dui.Obfuscate(g, pairs, dui.NetHideConfig{DensityCap: 30}, 1)
	fmt.Printf("\nNetHide (density cap 30): accuracy %.3f, utility %.3f, max density %d -> %d\n",
		m.Accuracy, m.Utility, m.MaxDensityPhys, m.MaxDensityVirt)
	fmt.Printf("NetHide traceroute SEA->NYC: %s\n", render(g, dui.Traceroute(virt, src, dst)))

	// Malicious operator: unconstrained lie hiding the bottleneck.
	lie := dui.MaliciousTopology(g, pairs, hot.A, hot.B)
	view := nethide.Survey(lie, pairs)
	fmt.Printf("\nmalicious operator hides %s-%s entirely: visible in any traceroute = %v\n",
		g.Name(hot.A), g.Name(hot.B), nethide.HiddenLinkVisible(view, hot.A, hot.B))
	d, _ := g.NodeByName("CHI")
	s2, _ := g.NodeByName("DEN")
	fmt.Printf("lying traceroute DEN->CHI:   %s\n", render(g, dui.Traceroute(lie, s2, d)))
	fmt.Printf("truthful route DEN->CHI:     %s\n", render(g, dui.Traceroute(phys, s2, d)))
}

func render(g *graph.Graph, hops []graph.NodeID) string {
	s := ""
	for i, h := range hops {
		if i > 0 {
			s += " -> "
		}
		s += g.Name(h)
	}
	return s
}
