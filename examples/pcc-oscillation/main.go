// PCC oscillation walkthrough (§4.2): a clean PCC flow converging to its
// bottleneck, the utility-equalizer MitM pinning it near its start rate,
// and the analytic ±5% forced-oscillation ladder.
//
//	go run ./examples/pcc-oscillation
package main

import (
	"fmt"

	"dui"
)

func main() {
	clean := dui.RunOscillation(dui.OscConfig{Duration: 90, Seed: 2})
	attacked := dui.RunOscillation(dui.OscConfig{Duration: 90, Seed: 2, Attack: true})

	fmt.Println("== PCC Allegro, 1000 pkts/s bottleneck ==")
	fmt.Printf("clean:    converges to %.0f pkts/s\n", clean.MeanRateLate)
	fmt.Printf("attacked: pinned at %.0f pkts/s, oscillating %.1f%% — the MitM dropped only %.2f%% of packets\n",
		attacked.MeanRateLate, 100*attacked.Flows[0].OscAmplitude, 100*attacked.DropFraction)

	fmt.Println("\nfirst monitor intervals of the attacked flow:")
	for i, r := range attacked.Records {
		if i >= 10 {
			break
		}
		fmt.Printf("  t=%4.1fs rate=%6.1f role=%-7s loss=%.3f utility=%8.2f\n",
			r.Start, r.Rate, r.Role, r.Loss, r.Utility)
	}

	trace, amp := dui.ForcedOscillation(0.01, 0.05, 8)
	fmt.Printf("\nanalytic model — ε per decision round when every trial ties: %v\n", trace)
	fmt.Printf("steady state: the flow probes rate·(1±0.05) forever: ±5%% oscillation (peak-to-peak %.0f%%)\n", 100*amp)
}
