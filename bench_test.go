package dui

// One benchmark per experiment of the paper (DESIGN.md §3). The benches
// run reduced-scale versions so `go test -bench=. -benchmem` finishes in
// minutes; the cmd/ binaries run the full paper parameters. Reported
// custom metrics carry each experiment's headline number so a bench run
// doubles as a regression check on the reproduced shapes.

import (
	"fmt"
	"math"
	"testing"

	"dui/internal/blink"
	"dui/internal/conntrack"
	"dui/internal/dapper"
	"dui/internal/graph"
	"dui/internal/nethide"
	"dui/internal/netsim"
	"dui/internal/packet"
	"dui/internal/pcc"
	"dui/internal/pytheas"
	"dui/internal/sketch"
	"dui/internal/sppifo"
	"dui/internal/stats"
	"dui/internal/trace"
)

// BenchmarkEngineE1 measures engine throughput on the E1-shaped workload:
// a sustained packet storm through a bottleneck link — the clustered
// back-to-back timestamps Blink's FIN/RST storm produces — over a
// background population of per-flow hold timers with exponential gaps.
// A fixed set of packets circulates host-to-host (the receiver reflects
// each one back), so the steady state allocates nothing and the measured
// cost is pure event machinery. sched=heap/lanes=off routes every packet
// through the two closure events of the PR 2 engine — exactly the
// BENCH_2-era code path, doubling as the baseline; sched=wheel/lanes=on
// is the timing wheel with link batching. The events/sec ratio between
// the two is the tentpole speedup figure tracked in EXPERIMENTS.md and
// gated by cmd/benchgate. Traces are byte-identical either way
// (TestLinkLanesTraceIdenticalToClosures) — only the throughput differs.
func BenchmarkEngineE1(b *testing.B) {
	type mode struct {
		name  string
		sched netsim.Scheduler
		lanes bool
	}
	for _, m := range []mode{
		{"sched=heap/lanes=off", netsim.SchedulerHeap, false},
		{"sched=wheel/lanes=on", netsim.SchedulerWheel, true},
	} {
		m := m
		b.Run(m.name, func(b *testing.B) {
			prev := netsim.SetDefaultScheduler(m.sched)
			defer netsim.SetDefaultScheduler(prev)
			netsim.DebugHooks.DisableLinkLanes = !m.lanes
			defer func() { netsim.DebugHooks.DisableLinkLanes = false }()

			nw := netsim.New()
			h1 := nw.AddHost("h1", packet.MustParseAddr("10.0.0.1"))
			h2 := nw.AddHost("h2", packet.MustParseAddr("10.0.1.1"))
			nw.Connect(h1, h2, 1e9, 0.001, 0)
			nw.ComputeRoutes()
			// Reflect every delivery back at its sender: the packet
			// population circulates forever with zero allocation.
			reflect := netsim.ReceiverFunc(func(now float64, p *packet.Packet) {
				p.Src, p.Dst = p.Dst, p.Src
				if p.Src == h1.Addr {
					h1.Send(p)
				} else {
					h2.Send(p)
				}
			})
			h1.SetReceiver(reflect)
			h2.SetReceiver(reflect)
			const packets = 2048   // in-flight FIN/RST-storm population
			const timers = 1 << 12 // background per-flow hold timers (RTO-scale)
			for i := 0; i < packets; i++ {
				h1.Send(packet.NewTCP(h1.Addr, h2.Addr, packet.TCPHeader{Seq: uint32(i), Flags: packet.FlagFIN}, 1500))
			}
			e := nw.Engine()
			rng := stats.NewRNG(0xE1)
			var tick func()
			tick = func() { e.After(rng.Exp(1), tick) }
			for i := 0; i < timers; i++ {
				e.After(rng.Float64(), tick)
			}
			// Let circulation and the timer population reach steady state.
			nw.RunUntil(nw.Now() + 1)
			b.ReportAllocs()
			b.ResetTimer()
			done := 0
			for done < b.N {
				done += e.RunUntil(e.Now() + 0.01)
			}
			b.StopTimer()
			b.ReportMetric(float64(done)/b.Elapsed().Seconds(), "events/sec")
		})
	}
}

// BenchmarkEngineHold isolates the scheduler on the pure timer hold
// model: a large population of self-rescheduling timers with exponential
// inter-event gaps and no packets. This is the heap's best case (no
// batching applies), so it bounds the scheduler-only share of the E1
// speedup.
func BenchmarkEngineHold(b *testing.B) {
	const population = 1 << 16
	for _, sched := range []netsim.Scheduler{netsim.SchedulerHeap, netsim.SchedulerWheel} {
		sched := sched
		b.Run("sched="+sched.String(), func(b *testing.B) {
			e := netsim.NewEngineSched(sched)
			rng := stats.NewRNG(0xE1)
			var tick func()
			tick = func() { e.After(rng.Exp(1), tick) }
			for i := 0; i < population; i++ {
				e.After(rng.Float64(), tick)
			}
			// Let the queue reach steady state before timing.
			e.RunUntil(2)
			b.ReportAllocs()
			b.ResetTimer()
			done := 0
			for done < b.N {
				done += e.RunUntil(e.Now() + 0.01)
			}
			b.StopTimer()
			b.ReportMetric(float64(done)/b.Elapsed().Seconds(), "events/sec")
		})
	}
}

// BenchmarkEngineLinkBurst measures the packet path through a link:
// bursts of back-to-back packets serialize, propagate, and deliver.
// lanes=off routes every packet through the two closure events of the
// PR 2 engine (with the heap scheduler, this is exactly the BENCH_2-era
// code); lanes=on is the batching fast path on the timing wheel. Traces
// are byte-identical either way (TestLinkLanesTraceIdenticalToClosures) —
// only the events/sec differ.
func BenchmarkEngineLinkBurst(b *testing.B) {
	type mode struct {
		name  string
		sched netsim.Scheduler
		lanes bool
	}
	for _, m := range []mode{
		{"sched=heap/lanes=off", netsim.SchedulerHeap, false},
		{"sched=wheel/lanes=on", netsim.SchedulerWheel, true},
	} {
		m := m
		b.Run(m.name, func(b *testing.B) {
			prev := netsim.SetDefaultScheduler(m.sched)
			defer netsim.SetDefaultScheduler(prev)
			netsim.DebugHooks.DisableLinkLanes = !m.lanes
			defer func() { netsim.DebugHooks.DisableLinkLanes = false }()

			nw := netsim.New()
			h1 := nw.AddHost("h1", packet.MustParseAddr("10.0.0.1"))
			h2 := nw.AddHost("h2", packet.MustParseAddr("10.0.1.1"))
			nw.Connect(h1, h2, 1e9, 0.001, 0)
			nw.ComputeRoutes()
			received := 0
			h2.SetReceiver(netsim.ReceiverFunc(func(now float64, p *packet.Packet) { received++ }))
			// The burst population is allocated once and re-sent every
			// iteration — each burst fully drains before the next, and a
			// direct host-to-host Send only restamps the packet ID — so
			// the timed loop measures the link path alone, allocation-free.
			const burst = 256
			pkts := make([]*packet.Packet, burst)
			for j := range pkts {
				pkts[j] = packet.NewTCP(h1.Addr, h2.Addr, packet.TCPHeader{Seq: uint32(j)}, 1500)
			}
			b.ReportAllocs()
			b.ResetTimer()
			events := uint64(0)
			for i := 0; i < b.N; i += burst {
				before := nw.Engine().Executed()
				for j := 0; j < burst; j++ {
					h1.Send(pkts[j])
				}
				nw.RunUntil(nw.Now() + 1)
				events += nw.Engine().Executed() - before
			}
			b.StopTimer()
			b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/sec")
			if received == 0 {
				b.Fatal("no packets delivered")
			}
		})
	}
}

// BenchmarkE1BlinkFig2 regenerates Fig 2 at reduced run count.
func BenchmarkE1BlinkFig2(b *testing.B) {
	var hit float64
	for i := 0; i < b.N; i++ {
		res := RunFig2(Fig2Config{Runs: 2, Duration: 300, Seed: uint64(i + 1), MeanFlowDuration: 6.35})
		hit = stats.Mean(res.HitTimes)
	}
	b.ReportMetric(hit, "mean-hit-s")
}

// BenchmarkE1BlinkFig2Parallel compares the sequential and pooled Fig 2
// drivers at a fixed reduced scale. The trial runner guarantees the
// results are bit-identical at every worker count, so the sub-benchmarks
// measure pure scheduling overhead/speedup. On a single-core box the
// workers=4 variant degenerates to sequential plus pool overhead; on
// 4+ cores it approaches a 4x wall-clock reduction (8 independent
// trials, embarrassingly parallel).
func BenchmarkE1BlinkFig2Parallel(b *testing.B) {
	cfg := Fig2Config{Runs: 8, Duration: 150, LegitFlows: 500, Seed: 1, MeanFlowDuration: 6.35}
	for _, workers := range []int{1, 4} {
		workers := workers
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			var cells float64
			for i := 0; i < b.N; i++ {
				c := cfg
				c.Parallel = workers
				res := RunFig2(c)
				cells = res.SimMean.Values[len(res.SimMean.Values)-1]
			}
			b.ReportMetric(cells, "end-cells")
		})
	}
}

// BenchmarkE2PrefixSurvey regenerates the tR survey.
func BenchmarkE2PrefixSurvey(b *testing.B) {
	var med float64
	for i := 0; i < b.N; i++ {
		prefixes := SyntheticSurvey(6, uint64(i+1))
		rows := RunSurvey(BlinkConfig{}, prefixes, 200, uint64(i+1))
		trs := make([]float64, len(rows))
		for j, r := range rows {
			trs[j] = r.TR
		}
		med = stats.Median(trs)
	}
	b.ReportMetric(med, "median-tR-s")
}

// BenchmarkE3BlinkHijack runs the end-to-end hijack.
func BenchmarkE3BlinkHijack(b *testing.B) {
	var cells float64
	for i := 0; i < b.N; i++ {
		res := RunHijack(HijackConfig{Seed: uint64(i + 1), TriggerAt: 100, Duration: 120})
		cells = float64(res.MaliciousCellsAtTrigger)
	}
	b.ReportMetric(cells, "malicious-cells")
}

// BenchmarkE4PCCOscillation runs the attacked PCC flow.
func BenchmarkE4PCCOscillation(b *testing.B) {
	var rate float64
	for i := 0; i < b.N; i++ {
		res := RunOscillation(OscConfig{Duration: 60, Seed: uint64(i + 1), Attack: true})
		rate = res.Flows[0].MeanRateLate
	}
	b.ReportMetric(rate, "pinned-rate-pps")
}

// BenchmarkE5PytheasPoisoning runs the group-poisoning attack.
func BenchmarkE5PytheasPoisoning(b *testing.B) {
	var qoe float64
	for i := 0; i < b.N; i++ {
		cfg := PytheasConfig{Seed: uint64(i + 1), Sessions: 600, Epochs: 150}
		res := RunPytheas(cfg, pytheas.Poison{Bots: 90, ReportMultiplier: 5}.Defaults())
		qoe = res.HonestQoELate
	}
	b.ReportMetric(qoe, "poisoned-qoe")
}

// BenchmarkE6NetHide runs obfuscation + attacker evaluation on Abilene.
func BenchmarkE6NetHide(b *testing.B) {
	g := graph.Abilene()
	pairs := nethide.AllPairs(g)
	var success float64
	for i := 0; i < b.N; i++ {
		virt, _ := Obfuscate(g, pairs, NetHideConfig{DensityCap: 30}, uint64(i+1))
		out := nethide.EvaluateAttack(nethide.ShortestPaths(g, pairs), nethide.Survey(virt, pairs), 0)
		success = out.Success
	}
	b.ReportMetric(success, "attack-success")
}

// BenchmarkE7aSPPIFO runs the adversarial-rank comparison.
func BenchmarkE7aSPPIFO(b *testing.B) {
	var amp float64
	for i := 0; i < b.N; i++ {
		out := sppifo.Experiment{Seed: uint64(i + 1), Victims: 1000}.Run()
		amp = out.Amplification
	}
	b.ReportMetric(amp, "amplification")
}

// BenchmarkE7bSketchPollution runs the FlowRadar pollution attack.
func BenchmarkE7bSketchPollution(b *testing.B) {
	var hidden float64
	for i := 0; i < b.N; i++ {
		rows := sketch.PollutionExperiment{Seed: uint64(i + 1), LegitFlows: 800}.Run([]int{300})
		for _, r := range rows {
			if r.Crafted {
				hidden = 1 - r.AttackDecoded
			}
		}
	}
	b.ReportMetric(hidden, "attack-flows-hidden")
}

// BenchmarkE7cRONProbes runs the probe-manipulation attack.
func BenchmarkE7cRONProbes(b *testing.B) {
	var inflation float64
	for i := 0; i < b.N; i++ {
		out := RunProbeAttack(8, uint64(i+1), 0.2)
		inflation = out.Inflation
	}
	b.ReportMetric(inflation, "latency-inflation")
}

// BenchmarkE8Defenses runs the Blink supervisor against the hijack.
func BenchmarkE8Defenses(b *testing.B) {
	clean := RunFailover(FailoverConfig{FailAt: 0, Duration: 15})
	model := NewRTOModel(clean.SRTTs, 0.2)
	var vetoed float64
	for i := 0; i < b.N; i++ {
		res := RunHijack(HijackConfig{
			Seed: uint64(i + 1), TriggerAt: 100, Duration: 120,
			Hook: func(p *blink.Pipeline) { GuardPipeline(p, model) },
		})
		vetoed = float64(res.VetoedReroutes)
	}
	b.ReportMetric(vetoed, "vetoed-reroutes")
}

// BenchmarkPopScale measures the PoP-scale steady state: a prefix-
// interleaved stream of 4096 prefixes × 64 flows (262k concurrently
// active) fed through a MonitorBank's flat per-prefix selectors. The
// timed loop is the real per-packet path of cmd/blink-pop — generator
// Next plus bank Feed — and must stay at 0 allocs/op (pinned here and by
// TestMonitorBankFeedZeroAllocs). flows/sec is the headline metric:
// concurrently-active flows × virtual seconds per wall second, which for
// this workload equals events/sec ÷ PPS.
func BenchmarkPopScale(b *testing.B) {
	const prefixes = 4096
	pop := trace.PopConfig{
		Prefixes: prefixes, FlowsPerPrefix: 64,
		Dur: trace.ExpDuration{MeanSec: 6.35}, PPS: 2,
		Until: math.Inf(1), Seed: 1,
	}.Defaults()
	sh := trace.NewPopShard(pop, 0, prefixes)
	bank := blink.NewMonitorBank(prefixes, blink.Config{})
	feed := func() {
		ev, _ := sh.Next()
		bank.Feed(ev.Prefix, ev.Time, ev.Pkt)
	}
	// Warm through initial occupancy and into eviction/renewal churn.
	for i := 0; i < prefixes*64*2; i++ {
		feed()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		feed()
	}
	b.StopTimer()
	evps := float64(b.N) / b.Elapsed().Seconds()
	b.ReportMetric(evps, "events/sec")
	b.ReportMetric(evps/pop.PPS, "flows/sec")
}

// BenchmarkSubstrateFlowSelector measures the hot data-plane path: one
// packet through Blink's flow selector.
func BenchmarkSubstrateFlowSelector(b *testing.B) {
	m := blink.NewMonitor(blink.Config{})
	st := trace.NewLegit(trace.LegitConfig{
		Victim: blink.Victim, Flows: 500, Dur: trace.ExpDuration{MeanSec: 6},
		PPS: 2, Until: math.Inf(1), SrcBase: blink.LegitSrcBase,
	}, stats.NewRNG(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev, _ := st.Next()
		m.Feed(ev.Time, ev.Pkt)
	}
}

func BenchmarkSubstrateSketchAdd(b *testing.B) {
	fr := sketch.New(4096, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fr.Add(sketch.FlowID(i))
	}
}

func BenchmarkSubstratePCCUtility(b *testing.B) {
	var u float64
	for i := 0; i < b.N; i++ {
		u = pcc.Allegro(float64(i%1000)+1, float64(i%50)/1000)
	}
	_ = u
}

// BenchmarkE7dDAPPERMisblaming runs the diagnosis mis-blaming attack.
func BenchmarkE7dDAPPERMisblaming(b *testing.B) {
	var flipped float64
	for i := 0; i < b.N; i++ {
		out := RunDapper(TrueSender, InjectRetransmissions, 15)
		if out.Diagnosis == dapper.NetworkLimited {
			flipped = 1
		}
	}
	b.ReportMetric(flipped, "diagnosis-flipped")
}

// BenchmarkE7eStateExhaustion runs the SilkRoad-style SYN flood.
func BenchmarkE7eStateExhaustion(b *testing.B) {
	var broken float64
	for i := 0; i < b.N; i++ {
		res := RunStateExhaustion(conntrack.ExhaustionConfig{Seed: uint64(i + 1), AttackSYNRate: 2000})
		broken = res.BrokenFraction
	}
	b.ReportMetric(broken, "broken-fraction")
}

// BenchmarkE7fBNNEvasion runs the adversarial-example search.
func BenchmarkE7fBNNEvasion(b *testing.B) {
	var evasion float64
	for i := 0; i < b.N; i++ {
		_, rows := RunBNNEvasion(uint64(i)|1, []int{4})
		for _, r := range rows {
			if r.Crafted {
				evasion = r.SuccessRate
			}
		}
	}
	b.ReportMetric(evasion, "evasion-rate")
}

// Ablation benches for the design choices DESIGN.md calls out.

// BenchmarkAblationBlinkEviction sweeps the flow-selector inactivity
// timeout: shorter eviction shortens tR, making the attack easier —
// the defender's dilemma (longer timeouts slow legitimate sampling).
func BenchmarkAblationBlinkEviction(b *testing.B) {
	for _, timeout := range []float64{1, 2, 4} {
		timeout := timeout
		b.Run(fmt.Sprintf("timeout=%.0fs", timeout), func(b *testing.B) {
			var tr float64
			for i := 0; i < b.N; i++ {
				tr = blink.MeasureTR(blink.Config{InactivityTimeout: timeout}, 300,
					trace.ExpDuration{MeanSec: 6}, 2, 60, 10, stats.NewRNG(uint64(i+1)))
			}
			b.ReportMetric(tr, "tR-s")
			b.ReportMetric(RequiredQm(64, 32, tr, 510, 0.95), "required-qm")
		})
	}
}

// BenchmarkAblationBlinkResetPeriod sweeps the sample-reset period tB
// (the attacker's time budget): required qm falls as tB grows.
func BenchmarkAblationBlinkResetPeriod(b *testing.B) {
	for _, tb := range []float64{120, 510, 1800} {
		tb := tb
		b.Run(fmt.Sprintf("tB=%.0fs", tb), func(b *testing.B) {
			var qm float64
			for i := 0; i < b.N; i++ {
				qm = RequiredQm(64, 32, 8.37, tb, 0.95)
			}
			b.ReportMetric(qm, "required-qm")
		})
	}
}

// BenchmarkAblationPCCUtility compares utility shapes under the
// equalizer: the sigmoid cliff (Allegro) vs a loss-linear utility.
func BenchmarkAblationPCCUtility(b *testing.B) {
	for _, tc := range []struct {
		name string
		u    pcc.Utility
	}{{"allegro", pcc.Allegro}, {"linear", pcc.Linear}} {
		tc := tc
		b.Run(tc.name, func(b *testing.B) {
			var rate float64
			for i := 0; i < b.N; i++ {
				res := RunOscillation(OscConfig{Duration: 60, Seed: uint64(i + 1), Attack: true, Utility: tc.u})
				rate = res.Flows[0].MeanRateLate
			}
			b.ReportMetric(rate, "pinned-rate-pps")
		})
	}
}

// BenchmarkAblationSketchSizing sweeps table size against a fixed crafted
// attack: bigger tables resist longer but the stopping set scales with
// the targeted region, not the table.
func BenchmarkAblationSketchSizing(b *testing.B) {
	for _, m := range []int{2048, 4096, 8192} {
		m := m
		b.Run(fmt.Sprintf("cells=%d", m), func(b *testing.B) {
			var hidden float64
			for i := 0; i < b.N; i++ {
				rows := sketch.PollutionExperiment{M: m, Seed: uint64(i + 1)}.Run([]int{400})
				for _, r := range rows {
					if r.Crafted {
						hidden = 1 - r.AttackDecoded
					}
				}
			}
			b.ReportMetric(hidden, "attack-flows-hidden")
		})
	}
}

// BenchmarkAblationSPPIFOQueues sweeps the queue count against the
// adversarial sequence.
func BenchmarkAblationSPPIFOQueues(b *testing.B) {
	for _, k := range []int{4, 8, 16} {
		k := k
		b.Run(fmt.Sprintf("queues=%d", k), func(b *testing.B) {
			var amp float64
			for i := 0; i < b.N; i++ {
				amp = RunSPPIFO(k, uint64(i+1)).Amplification
			}
			b.ReportMetric(amp, "amplification")
		})
	}
}
