package dui

import (
	"math"
	"testing"
)

// The facade tests exercise the public API exactly as a downstream user
// would; the heavy behavioural coverage lives in the internal packages.

func TestCatalogFacade(t *testing.T) {
	cat := Catalog()
	if len(cat) < 7 {
		t.Fatalf("catalog has %d entries", len(cat))
	}
	for _, cs := range cat {
		if cs.MinPrivilege != Host && cs.MinPrivilege != MitM && cs.MinPrivilege != Operator {
			t.Fatalf("bad privilege in %s", cs.Name)
		}
		if cs.Target != Infrastructure && cs.Target != Endpoint {
			t.Fatalf("bad target in %s", cs.Name)
		}
	}
}

func TestRequiredQmFacade(t *testing.T) {
	qm := RequiredQm(64, 32, 8.37, 510, 0.95)
	if qm <= 0 || qm > 0.0525 {
		t.Fatalf("required qm = %v", qm)
	}
}

func TestForcedOscillationFacade(t *testing.T) {
	trace, amp := ForcedOscillation(0.01, 0.05, 6)
	if len(trace) != 6 || amp != 0.10 {
		t.Fatalf("trace=%v amp=%v", trace, amp)
	}
}

func TestSurveyFacade(t *testing.T) {
	prefixes := SyntheticSurvey(4, 1)
	rows := RunSurvey(BlinkConfig{}, prefixes, 150, 2)
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.TR <= 0 || math.IsNaN(r.RequiredQm) {
			t.Fatalf("bad row %+v", r)
		}
	}
}

func TestTopologyFacade(t *testing.T) {
	if Abilene().N() != 11 {
		t.Fatal("abilene")
	}
	if FatTree(4).N() != 20 {
		t.Fatal("fattree")
	}
}

func TestNetHideFacadeRoundTrip(t *testing.T) {
	g := Abilene()
	src, _ := g.NodeByName("SEA")
	dst, _ := g.NodeByName("NYC")
	pm := MaliciousTopology(g, nil, 0, 1)
	_ = pm
	virt, m := Obfuscate(g, nil, NetHideConfig{}, 1)
	if len(virt) != 0 || m.Accuracy != 0 {
		// No pairs given: empty maps, zero metrics — degenerate but
		// well-defined.
		t.Fatalf("unexpected: %v %v", virt, m)
	}
	_ = src
	_ = dst
}
